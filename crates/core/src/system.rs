//! The hybrid distributed–centralized DBMS simulator.
//!
//! A single-threaded discrete-event simulation of `N` local sites plus the
//! central complex, implementing the full Section 2 protocol:
//!
//! * local locking at each site, central locking at the central complex,
//! * commit-time mark-for-abort checks,
//! * coherence counts and asynchronous update propagation (with optional
//!   batching) and acknowledgements,
//! * invalidation of central lock holders by incoming asynchronous updates,
//! * the authentication phase of central/shipped transactions: coherence
//!   negative-acks, forcible lock seizure from local holders (marking them
//!   for abort), commit fan-out, and re-execution on failure,
//! * deadlock detection with abort-and-rerun,
//! * CPU scheduling (FCFS, released on I/O, lock waits and communication),
//!   fixed-delay FIFO links, and delayed central-state snapshots for the
//!   routing strategies.

use std::collections::HashMap;

use hls_analytic::Observed;
use hls_lockmgr::{Grant, LockId, LockMode, LockTable, OwnerId, RequestOutcome};
use hls_net::{Envelope, NodeId, StarNetwork};
use hls_sim::{EventQueue, Job, MultiServer, RngStreams, SimDuration, SimTime};
use hls_workload::{ArrivalProcess, TxnClass, TxnGenerator};
use rand::rngs::StdRng;

use crate::config::{ClassBMode, SystemConfig};
use crate::error::ConfigError;
use crate::metrics::{MetricsCollector, RunMetrics};
use crate::msg::{CentralSnapshot, Msg};
use crate::router::{RouteCtx, Router, RouterSpec};
use crate::trace::{Trace, TraceEvent};
use crate::txn::{Phase, Route, Txn};

/// Where a CPU or lock-table operation takes place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Locale {
    Site(usize),
    Central,
}

/// Work items executed on a CPU.
#[derive(Debug, Clone)]
enum JobKind {
    /// A burst belonging to the transaction's own lifecycle.
    TxnPhase(u64),
    /// Processing an authentication request at a local site.
    AuthProcess {
        txn: u64,
        site: usize,
        locks: Vec<(LockId, LockMode)>,
    },
    /// Applying an asynchronous update message at the central complex.
    ApplyAsync {
        from: usize,
        writes: Vec<(LockId, u64)>,
    },
    /// Applying a commit message at a local site.
    ApplyCommit {
        txn: u64,
        site: usize,
        writes: Vec<(LockId, u64)>,
    },
}

/// Simulation events.
#[derive(Debug, Clone)]
enum Ev {
    Arrival {
        site: usize,
    },
    CpuDone {
        loc: Locale,
        job: u64,
    },
    IoDone {
        txn: u64,
    },
    MsgArrive {
        to: NodeId,
        msg: Msg,
        snap: Option<CentralSnapshot>,
    },
    FlushAsync {
        site: usize,
    },
    Sample,
    EndWarmup,
}

#[derive(Debug)]
struct SiteState {
    cpu: MultiServer,
    locks: LockTable,
    /// Class A transactions currently running locally at this site.
    n_txns: usize,
    latest_central: CentralSnapshot,
    async_buffer: Vec<(LockId, u64)>,
    busy_at_warmup: f64,
    /// Master copy of this site's data: last write stamp per item.
    store: HashMap<LockId, u64>,
}

#[derive(Debug)]
struct CentralState {
    cpu: MultiServer,
    locks: LockTable,
    /// Transactions resident at the central complex.
    n_txns: usize,
    busy_at_warmup: f64,
    /// Replica of every site's data: last write stamp per item.
    store: HashMap<LockId, u64>,
}

/// One point of a sampled state time series (see
/// [`HybridSystem::run_sampled`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Sample time, seconds.
    pub at: f64,
    /// Central CPU queue length (including jobs in service).
    pub q_central: usize,
    /// Transactions resident at the central complex.
    pub n_central: usize,
    /// Mean local CPU queue length across sites.
    pub q_local_mean: f64,
    /// Transactions running locally, summed over sites.
    pub n_local_total: usize,
}

/// Result of the post-drain replica comparison (see
/// [`HybridSystem::run_drained`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Items with at least one committed write at a master site.
    pub items_checked: usize,
    /// Transactions still in flight after the drain (should be 0).
    pub in_flight_txns: usize,
    /// Items whose central-replica stamp differs from the master copy
    /// (should be empty).
    pub divergent: Vec<LockId>,
}

impl ConvergenceReport {
    /// `true` when the drain completed every transaction and the central
    /// replica matches every master copy.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.divergent.is_empty() && self.in_flight_txns == 0
    }
}

/// The simulator. Construct with [`HybridSystem::new`], execute with
/// [`HybridSystem::run`].
///
/// # Examples
///
/// ```
/// use hls_core::{HybridSystem, RouterSpec, SystemConfig};
///
/// let cfg = SystemConfig::paper_default()
///     .with_total_rate(10.0)
///     .with_horizon(60.0, 10.0);
/// let metrics = HybridSystem::new(cfg, RouterSpec::QueueLength)
///     .expect("valid config")
///     .run();
/// assert!(metrics.completions > 0);
/// ```
#[derive(Debug)]
pub struct HybridSystem {
    cfg: SystemConfig,
    queue: EventQueue<Ev>,
    net: StarNetwork,
    sites: Vec<SiteState>,
    central: CentralState,
    txns: HashMap<u64, Txn>,
    jobs: HashMap<u64, JobKind>,
    router: Box<dyn Router>,
    generator: TxnGenerator,
    arrivals: Vec<ArrivalProcess>,
    site_rngs: Vec<StdRng>,
    route_rng: StdRng,
    next_txn: u64,
    next_job: u64,
    next_write: u64,
    msg_counts: HashMap<&'static str, u64>,
    metrics: MetricsCollector,
    end: SimTime,
    trace: Option<Trace>,
    samples: Option<(f64, Vec<SamplePoint>)>,
}

impl HybridSystem {
    /// Builds a simulator from a configuration and a routing policy.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the violated constraint for an
    /// inconsistent configuration.
    pub fn new(cfg: SystemConfig, router: RouterSpec) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = cfg.params.n_sites;
        let streams = RngStreams::new(cfg.seed);
        let generator = TxnGenerator::new(cfg.workload_spec())?;
        let arrivals: Vec<ArrivalProcess> = match &cfg.site_profiles {
            Some(profiles) => profiles.iter().cloned().map(ArrivalProcess::new).collect(),
            None => (0..n)
                .map(|_| ArrivalProcess::new(cfg.arrival_profile.clone()))
                .collect(),
        };
        let sites = (0..n)
            .map(|_| SiteState {
                cpu: MultiServer::new(1, cfg.params.local_mips),
                locks: LockTable::new(),
                n_txns: 0,
                latest_central: CentralSnapshot::default(),
                async_buffer: Vec::new(),
                busy_at_warmup: 0.0,
                store: HashMap::new(),
            })
            .collect();
        let central = CentralState {
            cpu: MultiServer::new(cfg.params.central_servers, cfg.params.central_mips),
            locks: LockTable::new(),
            n_txns: 0,
            busy_at_warmup: 0.0,
            store: HashMap::new(),
        };
        let warmup = SimTime::from_secs(cfg.warmup);
        let end = SimTime::from_secs(cfg.sim_time);
        let net = StarNetwork::new(n, SimDuration::from_secs(cfg.params.comm_delay));
        Ok(HybridSystem {
            router: router.build(n),
            generator,
            arrivals,
            site_rngs: (0..n).map(|i| streams.stream(i as u64)).collect(),
            route_rng: streams.stream(1_000_003),
            queue: EventQueue::new(),
            net,
            sites,
            central,
            txns: HashMap::new(),
            jobs: HashMap::new(),
            next_txn: 1,
            next_job: 1,
            next_write: 1,
            msg_counts: HashMap::new(),
            metrics: MetricsCollector::new(warmup),
            end,
            trace: None,
            samples: None,
            cfg,
        })
    }

    /// Enables protocol-event tracing (see [`Trace`]); use
    /// [`HybridSystem::run_traced`] to retrieve the trace.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// Runs with tracing enabled, returning metrics and the protocol trace.
    #[must_use]
    pub fn run_traced(mut self) -> (RunMetrics, Trace) {
        self.enable_trace();
        let mut trace_out = Trace::new();
        let metrics = self.run_internal(Some(&mut trace_out));
        (metrics, trace_out)
    }

    fn trace(&mut self, at: SimTime, f: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(at, f());
        }
    }

    /// Runs the simulation to the configured horizon and returns the
    /// metrics measured after warm-up.
    #[must_use]
    pub fn run(mut self) -> RunMetrics {
        self.run_internal(None)
    }

    /// Runs while sampling system state every `interval` seconds,
    /// returning the metrics and the time series — used to visualize
    /// transient behaviour such as routing oscillations on stale state.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    #[must_use]
    pub fn run_sampled(mut self, interval: f64) -> (RunMetrics, Vec<SamplePoint>) {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "sample interval must be positive and finite, got {interval}"
        );
        self.samples = Some((interval, Vec::new()));
        self.queue
            .schedule(SimTime::from_secs(interval), Ev::Sample);
        let metrics = self.run_internal(None);
        let samples = self.samples.take().map(|(_, v)| v).unwrap_or_default();
        (metrics, samples)
    }

    /// Runs to the horizon, then **drains**: arrivals stop but every
    /// in-flight transaction and protocol message is processed to
    /// completion, after which the replica stores are compared.
    ///
    /// Returns the metrics and a [`ConvergenceReport`] asserting that the
    /// central replica converged to the master copies — the end-to-end
    /// correctness property of the asynchronous coherency protocol. Note
    /// that drained metrics include post-horizon completions; use
    /// [`HybridSystem::run`] for measurement runs.
    #[must_use]
    pub fn run_drained(mut self) -> (RunMetrics, ConvergenceReport) {
        let metrics = self.run_internal(None);
        // Process everything left in the pipeline.
        while let Some((now, ev)) = self.queue.pop() {
            self.handle(now, ev);
        }
        let report = self.convergence_report();
        (metrics, report)
    }

    /// Compares the central replica against the master copies item by
    /// item. Only meaningful once the system is fully drained.
    fn convergence_report(&self) -> ConvergenceReport {
        let spec = *self.generator.spec();
        let mut items_checked = 0;
        let mut divergent = Vec::new();
        for (site, state) in self.sites.iter().enumerate() {
            for (&item, &stamp) in &state.store {
                debug_assert_eq!(spec.master_of(item), site);
                items_checked += 1;
                if self.central.store.get(&item) != Some(&stamp) {
                    divergent.push(item);
                }
            }
        }
        // Items written only centrally must exist at their master too.
        for (&item, &stamp) in &self.central.store {
            let site = spec.master_of(item);
            if self.sites[site].store.get(&item) != Some(&stamp) && !divergent.contains(&item) {
                divergent.push(item);
            }
        }
        divergent.sort_unstable();
        divergent.dedup();
        ConvergenceReport {
            items_checked,
            in_flight_txns: self.txns.len(),
            divergent,
        }
    }

    fn run_internal(&mut self, trace_out: Option<&mut Trace>) -> RunMetrics {
        for site in 0..self.cfg.params.n_sites {
            let first = {
                let rng = &mut self.site_rngs[site];
                self.arrivals[site].next_after(rng, SimTime::ZERO)
            };
            self.queue.schedule(first, Ev::Arrival { site });
        }
        self.queue
            .schedule(SimTime::from_secs(self.cfg.warmup), Ev::EndWarmup);

        while let Some(t) = self.queue.peek_time() {
            if t >= self.end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event");
            self.handle(now, ev);
        }
        if let (Some(out), Some(collected)) = (trace_out, self.trace.take()) {
            *out = collected;
        }
        self.finalize()
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival { site } => self.on_arrival(now, site),
            Ev::CpuDone { loc, job } => self.on_cpu_done(now, loc, job),
            Ev::IoDone { txn } => self.on_io_done(now, txn),
            Ev::MsgArrive { to, msg, snap } => self.on_msg(now, to, msg, snap),
            Ev::FlushAsync { site } => self.flush_async(now, site),
            Ev::Sample => self.on_sample(now),
            Ev::EndWarmup => self.on_end_warmup(now),
        }
    }

    fn on_sample(&mut self, now: SimTime) {
        let Some((interval, samples)) = self.samples.as_mut() else {
            return;
        };
        let q_local_sum: usize = self.sites.iter().map(|s| s.cpu.queue_len()).sum();
        let n_local_total: usize = self.sites.iter().map(|s| s.n_txns).sum();
        samples.push(SamplePoint {
            at: now.as_secs(),
            q_central: self.central.cpu.queue_len(),
            n_central: self.central.n_txns,
            q_local_mean: q_local_sum as f64 / self.sites.len() as f64,
            n_local_total,
        });
        let next = now + SimDuration::from_secs(*interval);
        if next < self.end {
            self.queue.schedule(next, Ev::Sample);
        }
    }

    fn on_end_warmup(&mut self, now: SimTime) {
        for s in &mut self.sites {
            s.busy_at_warmup = s.cpu.busy_server_seconds(now);
        }
        self.central.busy_at_warmup = self.central.cpu.busy_server_seconds(now);
    }

    fn on_arrival(&mut self, now: SimTime, site: usize) {
        // Schedule the next arrival at this site.
        let next = {
            let rng = &mut self.site_rngs[site];
            self.arrivals[site].next_after(rng, now)
        };
        if next < self.end {
            self.queue.schedule(next, Ev::Arrival { site });
        }

        let spec = self.generator.generate(&mut self.site_rngs[site], site);
        self.metrics.on_arrival(now);

        let route = if spec.class == TxnClass::B {
            Route::Central
        } else {
            let obs = self.observe(site);
            let mut ctx = RouteCtx {
                now,
                site,
                obs,
                params: &self.cfg.params,
                rng: &mut self.route_rng,
            };
            let route = self.router.decide(&mut ctx);
            self.metrics.on_route_class_a(now, route == Route::Central);
            route
        };

        let id = self.next_txn;
        self.next_txn += 1;
        let class = spec.class;
        let mut txn = Txn::new(id, spec, route, now);
        if class == TxnClass::B && self.cfg.class_b_mode == ClassBMode::RemoteCalls {
            // The transaction stays at the origin: it starts with its setup
            // I/O rather than terminal-message forwarding.
            txn.remote_calls = true;
            txn.phase = Phase::SetupIo;
        }
        self.txns.insert(id, txn);
        self.trace(now, || TraceEvent::Arrival {
            txn: id,
            site,
            class,
            route,
        });

        match route {
            Route::Local => {
                self.sites[site].n_txns += 1;
                self.schedule_io(now, id, self.cfg.params.setup_io);
            }
            Route::Central if self.txns[&id].remote_calls => {
                self.schedule_io(now, id, self.cfg.params.setup_io);
            }
            Route::Central => {
                let instr = self.cfg.params.ship_origin_instr + self.cfg.params.ship_msg_instr;
                self.submit_cpu(now, Locale::Site(site), JobKind::TxnPhase(id), instr);
            }
        }
    }

    /// What a router at `site` can observe right now.
    fn observe(&self, site: usize) -> Observed {
        let s = &self.sites[site];
        let snap = if self.cfg.instantaneous_state {
            self.central_snapshot()
        } else {
            s.latest_central
        };
        Observed {
            q_local: s.cpu.queue_len() as f64,
            q_central: snap.q_cpu as f64,
            n_local: s.n_txns as f64,
            n_central: snap.n_txns as f64,
            locks_local: s.locks.grants_count() as f64,
            locks_central: snap.n_locks as f64,
        }
    }

    fn central_snapshot(&self) -> CentralSnapshot {
        CentralSnapshot {
            q_cpu: self.central.cpu.queue_len(),
            n_txns: self.central.n_txns,
            n_locks: self.central.locks.grants_count(),
        }
    }

    // ------------------------------------------------------------------
    // CPU plumbing
    // ------------------------------------------------------------------

    fn cpu_of(&mut self, loc: Locale) -> &mut MultiServer {
        match loc {
            Locale::Site(i) => &mut self.sites[i].cpu,
            Locale::Central => &mut self.central.cpu,
        }
    }

    fn submit_cpu(&mut self, now: SimTime, loc: Locale, kind: JobKind, instr: f64) {
        let job_id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(job_id, kind);
        if let Some(start) = self.cpu_of(loc).submit(now, Job::new(job_id, instr)) {
            self.queue.schedule(
                start.done_at,
                Ev::CpuDone {
                    loc,
                    job: start.job_id,
                },
            );
        }
    }

    fn on_cpu_done(&mut self, now: SimTime, loc: Locale, job_id: u64) {
        let (job, next) = self.cpu_of(loc).complete(now, job_id);
        if let Some(start) = next {
            self.queue.schedule(
                start.done_at,
                Ev::CpuDone {
                    loc,
                    job: start.job_id,
                },
            );
        }
        let kind = self.jobs.remove(&job.id).expect("unknown CPU job");
        match kind {
            JobKind::TxnPhase(txn) => self.txn_cpu_done(now, txn, loc),
            JobKind::AuthProcess { txn, site, locks } => {
                self.finish_auth_process(now, txn, site, &locks);
            }
            JobKind::ApplyAsync { from, writes } => {
                self.finish_apply_async(now, from, &writes);
            }
            JobKind::ApplyCommit { txn, site, writes } => {
                self.finish_apply_commit(now, txn, site, &writes);
            }
        }
    }

    fn schedule_io(&mut self, now: SimTime, txn: u64, secs: f64) {
        self.queue
            .schedule(now + SimDuration::from_secs(secs), Ev::IoDone { txn });
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    fn locale_of(&self, txn: &Txn) -> Locale {
        match txn.route {
            Route::Local => Locale::Site(txn.spec.origin),
            Route::Central => Locale::Central,
        }
    }

    fn txn_cpu_done(&mut self, now: SimTime, id: u64, loc: Locale) {
        let phase = self.txns[&id].phase;
        match phase {
            Phase::OriginMsgCpu => {
                let origin = self.txns[&id].spec.origin;
                debug_assert_eq!(loc, Locale::Site(origin));
                let remote = self.txns[&id].remote_calls;
                self.txns.get_mut(&id).expect("txn").phase = Phase::InTransit;
                let msg = if remote {
                    Msg::RemoteCallReq { txn: id }
                } else {
                    Msg::ShipTxn { txn: id }
                };
                self.send(now, NodeId::local(origin as u32), NodeId::CENTRAL, msg);
            }
            Phase::InitCpu => {
                if self.txns[&id].remote_calls && !self.txns[&id].is_rerun() {
                    self.origin_issue_call(now, id);
                } else {
                    self.start_call_cpu(now, id);
                }
            }
            Phase::CallCpu => self.request_current_lock(now, id),
            Phase::CommitCpu => match self.txns[&id].route {
                Route::Local => self.finish_local_commit(now, id),
                Route::Central => self.send_auth_requests(now, id),
            },
            other => unreachable!("CPU completion in non-CPU phase {other:?}"),
        }
    }

    fn on_io_done(&mut self, now: SimTime, id: u64) {
        let txn = self.txns.get_mut(&id).expect("I/O done for unknown txn");
        match txn.phase {
            Phase::SetupIo => {
                txn.phase = Phase::InitCpu;
                let p = &self.cfg.params;
                let (loc, instr) = match txn.route {
                    Route::Local => (
                        Locale::Site(txn.spec.origin),
                        p.init_instr + p.io_overhead_instr,
                    ),
                    // Remote-call transactions initialize at their origin.
                    Route::Central if txn.remote_calls => (
                        Locale::Site(txn.spec.origin),
                        p.init_instr + p.io_overhead_instr,
                    ),
                    Route::Central => (
                        Locale::Central,
                        (p.init_instr - p.ship_origin_instr) + p.io_overhead_instr,
                    ),
                };
                self.submit_cpu(now, loc, JobKind::TxnPhase(id), instr);
            }
            Phase::CallIo => self.advance_call(now, id),
            other => unreachable!("I/O completion in non-I/O phase {other:?}"),
        }
    }

    /// Remote-call mode: the origin spends per-call message handling, then
    /// sends the next remote function call to the central complex.
    fn origin_issue_call(&mut self, now: SimTime, id: u64) {
        let origin = self.txns[&id].spec.origin;
        self.txns.get_mut(&id).expect("txn").phase = Phase::OriginMsgCpu;
        self.submit_cpu(
            now,
            Locale::Site(origin),
            JobKind::TxnPhase(id),
            self.cfg.params.ship_msg_instr,
        );
    }

    /// Submits the CPU burst of the current database call.
    fn start_call_cpu(&mut self, now: SimTime, id: u64) {
        let (is_rerun, loc) = {
            let txn = &self.txns[&id];
            (txn.is_rerun(), self.locale_of(txn))
        };
        self.txns.get_mut(&id).expect("txn").phase = Phase::CallCpu;
        let p = &self.cfg.params;
        let instr = if is_rerun {
            p.db_call_instr
        } else {
            p.db_call_instr + p.io_overhead_instr
        };
        self.submit_cpu(now, loc, JobKind::TxnPhase(id), instr);
    }

    fn request_current_lock(&mut self, now: SimTime, id: u64) {
        let (lock, mode, loc) = {
            let txn = &self.txns[&id];
            let (lock, mode) = txn.spec.locks[txn.call_idx];
            (lock, mode, self.locale_of(txn))
        };
        let owner = OwnerId(id);
        let table = match loc {
            Locale::Site(i) => &mut self.sites[i].locks,
            Locale::Central => &mut self.central.locks,
        };
        match table.request(owner, lock, mode) {
            RequestOutcome::Granted | RequestOutcome::AlreadyHeld => {
                self.after_lock_granted(now, id);
            }
            RequestOutcome::Queued => {
                // Mark the requester as waiting first: breaking a cycle may
                // immediately grant its lock via the victim's releases.
                let txn = self.txns.get_mut(&id).expect("txn");
                txn.phase = Phase::LockWait;
                txn.wait_since = now;
                self.break_deadlocks(now, id, loc);
            }
        }
    }

    /// Detects and breaks deadlock cycles created by `requester`'s wait,
    /// aborting victims per the configured policy until no cycle remains
    /// or the requester itself is the victim.
    ///
    /// "In the case of a contention that leads into a deadlock the
    /// transaction is aborted and all locks held are released."
    fn break_deadlocks(&mut self, now: SimTime, requester: u64, loc: Locale) {
        loop {
            let cycle = {
                let table = match loc {
                    Locale::Site(i) => &self.sites[i].locks,
                    Locale::Central => &self.central.locks,
                };
                if table.waiting_for(OwnerId(requester)).is_none() {
                    return; // granted while breaking a previous cycle
                }
                table.deadlock_cycle(OwnerId(requester))
            };
            if cycle.is_empty() {
                return;
            }
            let victim = self.select_victim(&cycle, requester, loc);
            let grants = match loc {
                Locale::Site(i) => self.sites[i].locks.release_all(OwnerId(victim)),
                Locale::Central => self.central.locks.release_all(OwnerId(victim)),
            };
            let route = match loc {
                Locale::Site(_) => {
                    self.metrics.on_abort(now, |a| a.deadlock_local += 1);
                    Route::Local
                }
                Locale::Central => {
                    self.metrics.on_abort(now, |a| a.deadlock_central += 1);
                    Route::Central
                }
            };
            self.trace(now, || TraceEvent::DeadlockAbort { txn: victim, route });
            debug_assert_eq!(
                self.txns[&victim].phase,
                Phase::LockWait,
                "deadlock victim must be blocked"
            );
            self.txns
                .get_mut(&victim)
                .expect("victim")
                .begin_rerun(true);
            self.resume_grants(now, &grants, loc);
            self.start_call_cpu(now, victim);
            if victim == requester {
                return;
            }
        }
    }

    /// Applies the configured victim-selection policy to a cycle.
    fn select_victim(&self, cycle: &[OwnerId], requester: u64, loc: Locale) -> u64 {
        match self.cfg.deadlock_victim {
            crate::config::DeadlockVictim::Requester => requester,
            crate::config::DeadlockVictim::Youngest => {
                cycle.iter().map(|o| o.0).max().expect("non-empty cycle")
            }
            crate::config::DeadlockVictim::FewestLocks => {
                let table = match loc {
                    Locale::Site(i) => &self.sites[i].locks,
                    Locale::Central => &self.central.locks,
                };
                cycle
                    .iter()
                    .map(|o| o.0)
                    .min_by_key(|&o| (table.held_locks(OwnerId(o)).len(), u64::MAX - o))
                    .expect("non-empty cycle")
            }
        }
    }

    fn after_lock_granted(&mut self, now: SimTime, id: u64) {
        let txn = self.txns.get_mut(&id).expect("txn");
        if txn.phase == Phase::LockWait {
            txn.lock_wait_total += (now - txn.wait_since).as_secs();
        }
        if txn.is_rerun() {
            // Re-runs find all data in memory: no I/O.
            self.advance_call(now, id);
        } else {
            txn.phase = Phase::CallIo;
            self.schedule_io(now, id, self.cfg.params.io_per_call);
        }
    }

    fn advance_call(&mut self, now: SimTime, id: u64) {
        let (done, pause_remote, origin) = {
            let txn = self.txns.get_mut(&id).expect("txn");
            txn.call_idx += 1;
            (
                txn.call_idx >= txn.spec.locks.len(),
                txn.remote_calls && !txn.is_rerun(),
                txn.spec.origin,
            )
        };
        if done {
            self.begin_commit(now, id);
        } else if pause_remote {
            // Return the function-call result; the origin issues the next
            // call after another round trip.
            self.txns.get_mut(&id).expect("txn").phase = Phase::InTransit;
            self.send(
                now,
                NodeId::CENTRAL,
                NodeId::local(origin as u32),
                Msg::RemoteCallResp { txn: id },
            );
        } else {
            self.start_call_cpu(now, id);
        }
    }

    fn begin_commit(&mut self, now: SimTime, id: u64) {
        if self.txns[&id].marked_abort {
            self.abort_and_rerun(now, id);
            return;
        }
        let route = {
            let txn = self.txns.get_mut(&id).expect("txn");
            txn.phase = Phase::CommitCpu;
            txn.route
        };
        let loc = self.locale_of(&self.txns[&id]);
        let p = &self.cfg.params;
        let instr = match route {
            // Commit processing: send the asynchronous update message.
            Route::Local => p.async_update_instr,
            // Commit processing: send one authentication message per
            // involved master site.
            Route::Central => {
                let sites = self.auth_sites_of(id);
                let n = sites.len();
                self.txns.get_mut(&id).expect("txn").auth_sites = sites;
                p.auth_instr * n as f64
            }
        };
        self.submit_cpu(now, loc, JobKind::TxnPhase(id), instr);
    }

    /// Distinct master sites of the transaction's locks, in first-reference
    /// order (deterministic).
    fn auth_sites_of(&self, id: u64) -> Vec<usize> {
        let spec = *self.generator.spec();
        let txn = &self.txns[&id];
        let mut sites = Vec::new();
        for &(lock, _) in &txn.spec.locks {
            let m = spec.master_of(lock);
            if !sites.contains(&m) {
                sites.push(m);
            }
        }
        sites
    }

    /// A transaction found marked for abort (invalidation / authentication
    /// seizure / failed authentication): re-run, keeping its current locks
    /// ("locks ... are not released after an abort").
    fn abort_and_rerun(&mut self, now: SimTime, id: u64) {
        let route = self.txns[&id].route;
        match route {
            Route::Local => self.metrics.on_abort(now, |a| a.local_invalidated += 1),
            Route::Central => self.metrics.on_abort(now, |a| a.central_invalidated += 1),
        }
        self.trace(now, || TraceEvent::InvalidationAbort { txn: id, route });
        self.txns.get_mut(&id).expect("txn").begin_rerun(false);
        self.start_call_cpu(now, id);
    }

    // ------------------------------------------------------------------
    // Local commit and asynchronous propagation
    // ------------------------------------------------------------------

    fn finish_local_commit(&mut self, now: SimTime, id: u64) {
        // The mark may have been set while the commit burst was queued.
        if self.txns[&id].marked_abort {
            self.abort_and_rerun(now, id);
            return;
        }
        let site = self.txns[&id].spec.origin;
        let owner = OwnerId(id);

        let grants = self.sites[site].locks.release_all(owner);
        self.resume_grants(now, &grants, Locale::Site(site));

        let updated: Vec<LockId> = self.txns[&id].spec.updated_locks().collect();
        self.trace(now, || TraceEvent::LocalCommit {
            txn: id,
            site,
            updated: updated.clone(),
        });
        if !updated.is_empty() {
            // Apply the writes to the master copy and stamp them for
            // propagation to the central replica.
            let mut writes = Vec::with_capacity(updated.len());
            for &l in &updated {
                let stamp = self.next_write;
                self.next_write += 1;
                self.sites[site].store.insert(l, stamp);
                self.sites[site].locks.incr_coherence(l);
                writes.push((l, stamp));
            }
            match self.cfg.async_batch_window {
                None => {
                    self.trace(now, || TraceEvent::AsyncSent {
                        site,
                        locks: writes.iter().map(|&(l, _)| l).collect(),
                    });
                    self.send(
                        now,
                        NodeId::local(site as u32),
                        NodeId::CENTRAL,
                        Msg::AsyncUpdate { from: site, writes },
                    );
                }
                Some(window) => {
                    let buffer_was_empty = self.sites[site].async_buffer.is_empty();
                    self.sites[site].async_buffer.extend(writes);
                    if buffer_was_empty {
                        self.queue.schedule(
                            now + SimDuration::from_secs(window),
                            Ev::FlushAsync { site },
                        );
                    }
                }
            }
        }

        self.sites[site].n_txns -= 1;
        let txn = self.txns.remove(&id).expect("txn");
        let rt = now - txn.arrival;
        let attempts = txn.attempts;
        self.trace(now, || TraceEvent::Completion {
            txn: id,
            class: TxnClass::A,
            route: Route::Local,
            response: rt,
            attempts,
        });
        self.metrics
            .on_local_a_done(now, rt, attempts, txn.lock_wait_total);
        self.router.on_local_completion(site, rt);
    }

    fn flush_async(&mut self, now: SimTime, site: usize) {
        let writes = std::mem::take(&mut self.sites[site].async_buffer);
        if !writes.is_empty() {
            self.trace(now, || TraceEvent::AsyncSent {
                site,
                locks: writes.iter().map(|&(l, _)| l).collect(),
            });
            self.send(
                now,
                NodeId::local(site as u32),
                NodeId::CENTRAL,
                Msg::AsyncUpdate { from: site, writes },
            );
        }
    }

    fn finish_apply_async(&mut self, now: SimTime, from: usize, writes: &[(LockId, u64)]) {
        // Invalidate central holders of the updated elements and apply the
        // writes to the central replica.
        let mut invalidated = Vec::new();
        for &(lock, stamp) in writes {
            for (holder, _) in self.central.locks.holders(lock) {
                if let Some(t) = self.txns.get_mut(&holder.0) {
                    if !t.marked_abort {
                        invalidated.push(holder.0);
                    }
                    t.marked_abort = true;
                }
            }
            self.central.store.insert(lock, stamp);
        }
        self.trace(now, || TraceEvent::AsyncApplied {
            site: from,
            locks: writes.iter().map(|&(l, _)| l).collect(),
            invalidated,
        });
        self.send(
            now,
            NodeId::CENTRAL,
            NodeId::local(from as u32),
            Msg::AsyncAck {
                locks: writes.iter().map(|&(l, _)| l).collect(),
            },
        );
    }

    // ------------------------------------------------------------------
    // Authentication phase
    // ------------------------------------------------------------------

    fn send_auth_requests(&mut self, now: SimTime, id: u64) {
        if self.txns[&id].marked_abort {
            self.abort_and_rerun(now, id);
            return;
        }
        let spec = *self.generator.spec();
        let (sites, lock_lists): (Vec<usize>, Vec<Vec<(LockId, LockMode)>>) = {
            let txn = self.txns.get_mut(&id).expect("txn");
            txn.phase = Phase::AuthWait;
            txn.auth_pending = txn.auth_sites.len();
            txn.auth_negative = false;
            let sites = txn.auth_sites.clone();
            let lists = sites
                .iter()
                .map(|&s| {
                    txn.spec
                        .locks
                        .iter()
                        .copied()
                        .filter(|&(l, _)| spec.master_of(l) == s)
                        .collect()
                })
                .collect();
            (sites, lists)
        };
        self.trace(now, || TraceEvent::AuthStarted {
            txn: id,
            sites: sites.clone(),
        });
        for (site, locks) in sites.into_iter().zip(lock_lists) {
            self.send(
                now,
                NodeId::CENTRAL,
                NodeId::local(site as u32),
                Msg::AuthRequest { txn: id, locks },
            );
        }
    }

    fn finish_auth_process(
        &mut self,
        now: SimTime,
        id: u64,
        site: usize,
        locks: &[(LockId, LockMode)],
    ) {
        // Coherence check: any in-flight asynchronous update on the
        // requested elements forces a negative acknowledgement.
        let positive = {
            let table = &self.sites[site].locks;
            locks.iter().all(|&(l, _)| table.coherence(l) == 0)
        };
        let mut displaced_all = Vec::new();
        if positive {
            let owner = OwnerId(id);
            for &(lock, mode) in locks {
                let out = self.sites[site].locks.force_acquire(lock, owner, mode);
                for victim in out.displaced {
                    if let Some(t) = self.txns.get_mut(&victim.0) {
                        if !t.marked_abort {
                            displaced_all.push(victim.0);
                        }
                        t.marked_abort = true;
                    }
                }
                self.resume_grants(now, &out.grants, Locale::Site(site));
            }
        }
        self.trace(now, || TraceEvent::AuthProcessed {
            txn: id,
            site,
            positive,
            displaced: displaced_all.clone(),
        });
        self.send(
            now,
            NodeId::local(site as u32),
            NodeId::CENTRAL,
            Msg::AuthReply { txn: id, positive },
        );
    }

    fn on_auth_reply(&mut self, now: SimTime, id: u64, positive: bool) {
        let resolved = {
            let txn = self.txns.get_mut(&id).expect("auth reply for unknown txn");
            debug_assert_eq!(txn.phase, Phase::AuthWait);
            txn.auth_pending -= 1;
            if !positive {
                txn.auth_negative = true;
            }
            txn.auth_pending == 0
        };
        if resolved {
            self.resolve_auth(now, id);
        }
    }

    fn resolve_auth(&mut self, now: SimTime, id: u64) {
        let (negative, invalidated, sites) = {
            let txn = &self.txns[&id];
            (txn.auth_negative, txn.marked_abort, txn.auth_sites.clone())
        };
        if negative || invalidated {
            // Failed authentication: release any locks seized at the master
            // sites, then re-execute and repeat the process.
            for site in &sites {
                self.send(
                    now,
                    NodeId::CENTRAL,
                    NodeId::local(*site as u32),
                    Msg::AuthRelease { txn: id },
                );
            }
            if negative && !invalidated {
                self.metrics.on_abort(now, |a| a.central_neg_ack += 1);
            } else {
                self.metrics.on_abort(now, |a| a.central_invalidated += 1);
            }
            self.trace(now, || TraceEvent::AuthResolved {
                txn: id,
                committed: false,
            });
            self.txns.get_mut(&id).expect("txn").begin_rerun(false);
            self.start_call_cpu(now, id);
        } else {
            // Commit: release central locks, fan out commit messages, and
            // notify the origin.
            self.trace(now, || TraceEvent::AuthResolved {
                txn: id,
                committed: true,
            });
            // Apply the transaction's writes to the central replica and
            // stamp them for the commit fan-out to the master sites.
            let spec = *self.generator.spec();
            let updated: Vec<LockId> = self.txns[&id].spec.updated_locks().collect();
            let mut writes = Vec::with_capacity(updated.len());
            for &l in &updated {
                let stamp = self.next_write;
                self.next_write += 1;
                self.central.store.insert(l, stamp);
                writes.push((l, stamp));
            }
            let owner = OwnerId(id);
            let grants = self.central.locks.release_all(owner);
            self.resume_grants(now, &grants, Locale::Central);
            self.central.n_txns -= 1;
            for site in &sites {
                let site_writes: Vec<(LockId, u64)> = writes
                    .iter()
                    .copied()
                    .filter(|&(l, _)| spec.master_of(l) == *site)
                    .collect();
                self.send(
                    now,
                    NodeId::CENTRAL,
                    NodeId::local(*site as u32),
                    Msg::CommitMsg {
                        txn: id,
                        writes: site_writes,
                    },
                );
            }
            let origin = self.txns[&id].spec.origin;
            self.send(
                now,
                NodeId::CENTRAL,
                NodeId::local(origin as u32),
                Msg::Reply { txn: id },
            );
        }
    }

    fn finish_apply_commit(
        &mut self,
        now: SimTime,
        id: u64,
        site: usize,
        writes: &[(LockId, u64)],
    ) {
        for &(l, stamp) in writes {
            self.sites[site].store.insert(l, stamp);
        }
        let grants = self.sites[site].locks.release_all(OwnerId(id));
        self.resume_grants(now, &grants, Locale::Site(site));
    }

    // ------------------------------------------------------------------
    // Lock grant resumption
    // ------------------------------------------------------------------

    fn resume_grants(&mut self, now: SimTime, grants: &[Grant], loc: Locale) {
        for g in grants {
            let id = g.owner.0;
            debug_assert!(
                self.txns.contains_key(&id),
                "lock granted to unknown transaction"
            );
            debug_assert_eq!(
                self.txns[&id].phase,
                Phase::LockWait,
                "grant to non-waiting txn"
            );
            debug_assert_eq!(self.locale_of(&self.txns[&id]), loc);
            self.after_lock_granted(now, id);
        }
    }

    // ------------------------------------------------------------------
    // Messaging
    // ------------------------------------------------------------------

    fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: Msg) {
        *self.msg_counts.entry(msg.kind()).or_insert(0) += 1;
        // Every message from the central complex carries a state snapshot
        // for the routing strategies.
        let snap = from.is_central().then(|| self.central_snapshot());
        let Envelope { deliver_at, .. } = self.net.send(now, from, to, ());
        self.queue
            .schedule(deliver_at, Ev::MsgArrive { to, msg, snap });
    }

    fn on_msg(&mut self, now: SimTime, to: NodeId, msg: Msg, snap: Option<CentralSnapshot>) {
        if let (false, Some(s)) = (to.is_central(), snap) {
            self.sites[to.local_index()].latest_central = s;
        }
        match msg {
            Msg::ShipTxn { txn } => {
                debug_assert!(to.is_central());
                self.central.n_txns += 1;
                self.txns.get_mut(&txn).expect("shipped txn").phase = Phase::SetupIo;
                self.schedule_io(now, txn, self.cfg.params.setup_io);
            }
            Msg::AsyncUpdate { from, writes } => {
                debug_assert!(to.is_central());
                self.submit_cpu(
                    now,
                    Locale::Central,
                    JobKind::ApplyAsync { from, writes },
                    self.cfg.params.async_update_instr,
                );
            }
            Msg::AsyncAck { locks } => {
                let site = to.local_index();
                for l in locks {
                    self.sites[site].locks.decr_coherence(l);
                }
            }
            Msg::AuthRequest { txn, locks } => {
                let site = to.local_index();
                self.submit_cpu(
                    now,
                    Locale::Site(site),
                    JobKind::AuthProcess { txn, site, locks },
                    self.cfg.params.auth_instr,
                );
            }
            Msg::AuthReply { txn, positive } => self.on_auth_reply(now, txn, positive),
            Msg::AuthRelease { txn } => {
                let site = to.local_index();
                let grants = self.sites[site].locks.release_all(OwnerId(txn));
                self.resume_grants(now, &grants, Locale::Site(site));
            }
            Msg::CommitMsg { txn, writes } => {
                let site = to.local_index();
                self.submit_cpu(
                    now,
                    Locale::Site(site),
                    JobKind::ApplyCommit { txn, site, writes },
                    self.cfg.params.async_update_instr,
                );
            }
            Msg::RemoteCallReq { txn } => {
                debug_assert!(to.is_central());
                {
                    let t = self
                        .txns
                        .get_mut(&txn)
                        .expect("remote call for unknown txn");
                    if t.call_idx == 0 && !t.is_rerun() {
                        self.central.n_txns += 1;
                    }
                }
                self.start_call_cpu(now, txn);
            }
            Msg::RemoteCallResp { txn } => {
                debug_assert!(!to.is_central());
                self.origin_issue_call(now, txn);
            }
            Msg::Reply { txn } => {
                let site = to.local_index();
                let t = self.txns.remove(&txn).expect("reply for unknown txn");
                let rt = now - t.arrival;
                let (class, attempts) = (t.class(), t.attempts);
                self.trace(now, || TraceEvent::Completion {
                    txn,
                    class,
                    route: Route::Central,
                    response: rt,
                    attempts,
                });
                match class {
                    TxnClass::A => {
                        self.metrics
                            .on_shipped_a_done(now, rt, attempts, t.lock_wait_total);
                        self.router.on_shipped_completion(site, rt);
                    }
                    TxnClass::B => {
                        self.metrics
                            .on_class_b_done(now, rt, attempts, t.lock_wait_total);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    fn finalize(&self) -> RunMetrics {
        let window = self.end - SimTime::from_secs(self.cfg.warmup);
        let rho_local = self
            .sites
            .iter()
            .map(|s| {
                s.cpu.utilization(
                    self.end,
                    SimTime::from_secs(self.cfg.warmup),
                    s.busy_at_warmup,
                )
            })
            .sum::<f64>()
            / self.sites.len() as f64;
        let rho_central = self.central.cpu.utilization(
            self.end,
            SimTime::from_secs(self.cfg.warmup),
            self.central.busy_at_warmup,
        );
        let _ = window;
        let mut by_kind: Vec<(String, u64)> = self
            .msg_counts
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect();
        by_kind.sort();
        let mut m =
            self.metrics
                .finalize(self.end, rho_local, rho_central, self.net.messages_sent());
        m.messages_by_kind = by_kind;
        m
    }
}

/// Convenience wrapper: build and run in one call.
///
/// # Errors
///
/// Returns a [`ConfigError`] naming the violated constraint for an
/// inconsistent configuration.
pub fn run_simulation(cfg: SystemConfig, router: RouterSpec) -> Result<RunMetrics, ConfigError> {
    Ok(HybridSystem::new(cfg, router)?.run())
}
