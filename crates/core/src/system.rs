//! The hybrid distributed–centralized DBMS simulator.
//!
//! A single-threaded discrete-event simulation of `N` local sites plus the
//! central complex, implementing the full Section 2 protocol:
//!
//! * local locking at each site, central locking at the central complex,
//! * commit-time mark-for-abort checks,
//! * coherence counts and asynchronous update propagation (with optional
//!   batching) and acknowledgements,
//! * invalidation of central lock holders by incoming asynchronous updates,
//! * the authentication phase of central/shipped transactions: coherence
//!   negative-acks, forcible lock seizure from local holders (marking them
//!   for abort), commit fan-out, and re-execution on failure,
//! * deadlock detection with abort-and-rerun,
//! * CPU scheduling (FCFS, released on I/O, lock waits and communication),
//!   fixed-delay FIFO links, and delayed central-state snapshots for the
//!   routing strategies,
//! * deterministic fault injection ([`hls_faults`]): site and central
//!   crashes (volatile lock tables lost, resident transactions killed,
//!   durable queues replayed on recovery), link outages with store-and-
//!   forward deferral, and failure-aware routing overrides.

use std::collections::VecDeque;

use hls_analytic::Observed;
use hls_faults::FaultKind;
use hls_lockmgr::{Grant, LockId, LockMode, LockStats, LockTable, OwnerId, RequestOutcome};
use hls_net::{Envelope, NodeId, StarNetwork};
use hls_obs::{Profiler, Timer, TraceSink, TOTAL_KEY};
use hls_sim::model::{ReferenceEventKey, ReferenceQueue};
use hls_sim::{
    EventKey, EventQueue, FxHashMap, Job, MultiServer, RngStreams, SimDuration, SimRng, SimTime,
};
use hls_workload::{ArrivalProcess, DriftModel, TxnClass, TxnGenerator, TxnSpec};

use hls_placement::{
    plan, Migration, PartitionGeometry, PlacementMap, PlacementPolicy, PlacementStats,
};
use hls_shard::ShardMap;

use crate::config::{ClassBMode, SystemConfig};
use crate::dense::{JobSlab, MsgCounts, TxnTable, VecPool};
use crate::error::ConfigError;
use crate::metrics::{
    MetricsCollector, MetricsOp, MetricsSink, PlacementReport, RunMetrics, ScaleReport,
};
use crate::msg::{CentralSnapshot, Msg};
use crate::router::{FailureAwareRouter, FaultAwareDecision, RouteCtx, RouterSpec};
use crate::trace::{Trace, TraceEvent};
use crate::txn::{Phase, Route, Txn};

/// Where a CPU or lock-table operation takes place. Doubles as the
/// partition id of the speculative window executor: each site and the
/// central complex execute on their own worker replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Locale {
    Site(usize),
    /// Central shard `k` (`0` is the whole complex when unsharded).
    Central(usize),
}

/// Work items executed on a CPU.
#[derive(Debug, Clone)]
enum JobKind {
    /// A burst belonging to the transaction's own lifecycle.
    TxnPhase(u64),
    /// Processing an authentication request at a local site.
    AuthProcess {
        txn: u64,
        site: usize,
        locks: Vec<(LockId, LockMode)>,
    },
    /// Applying an asynchronous update message at the central complex.
    ApplyAsync {
        from: usize,
        writes: Vec<(LockId, u64)>,
    },
    /// Applying a commit message at a local site.
    ApplyCommit {
        txn: u64,
        site: usize,
        writes: Vec<(LockId, u64)>,
    },
    /// Sharded central complex: processing a cross-shard lock request at
    /// the shard owning the lock (`home` is the requester's resident
    /// shard, where the response goes).
    ShardLock {
        txn: u64,
        lock: LockId,
        mode: LockMode,
        home: u32,
    },
    /// Sharded central complex: a foreign shard fanning a delegated
    /// authentication request out to the master sites it homes.
    ShardAuthFanout {
        txn: u64,
        home: u32,
        locks: Vec<(LockId, LockMode)>,
    },
    /// Sharded central complex: a foreign shard applying a delegated
    /// commit — writes to its replica, lock releases, and the commit
    /// fan-out to its own sites.
    ShardCommitApply {
        txn: u64,
        locks: Vec<(LockId, LockMode)>,
        writes: Vec<(LockId, u64)>,
    },
}

/// Simulation events.
#[derive(Debug, Clone)]
enum Ev {
    Arrival {
        site: usize,
    },
    CpuDone {
        loc: Locale,
        job: u64,
    },
    IoDone {
        txn: u64,
    },
    MsgArrive {
        to: NodeId,
        msg: Msg,
        snap: Option<CentralSnapshot>,
    },
    FlushAsync {
        site: usize,
    },
    /// A scheduled fault transition (site/central/link state change).
    Fault(FaultKind),
    /// A class B arrival retrying after the central complex was found
    /// unreachable (failure-aware mode).
    RetryShip {
        spec: TxnSpec,
        site: usize,
        arrival: SimTime,
        attempt: u32,
    },
    /// A deadlock victim restarting after its jittered backoff.
    Rerun {
        txn: u64,
    },
    /// Periodic placement-controller activation: decay the access
    /// statistics, plan migrations, start their bulk copies. Scheduled
    /// only under an adaptive placement policy.
    PlacementTick,
    /// A migration's bulk copy finished; the partition enters the
    /// draining phase. `mig` guards against events from an aborted
    /// predecessor migration of the same partition.
    PlacementCopyDone {
        partition: u32,
        mig: u64,
    },
    Sample,
    EndWarmup,
}

/// A message buffered store-and-forward by a link outage, with its
/// original endpoints and piggybacked central-state snapshot.
type DeferredSend = (NodeId, NodeId, Msg, Option<CentralSnapshot>);

/// The simulator's event queue: the indexed four-ary [`EventQueue`] in
/// production, or the vendored pre-rewrite
/// [`ReferenceQueue`](hls_sim::model::ReferenceQueue) when a benchmark
/// wants the old behaviour ([`HybridSystem::use_reference_queue`]). Both
/// paths pay the same (perfectly predicted) match, so `sim_bench`'s
/// old-vs-new comparison isolates the queue implementations themselves.
#[derive(Debug, Clone)]
enum Queue<E> {
    Indexed(EventQueue<E>),
    Reference(ReferenceQueue<E>),
}

/// A cancellation key from whichever queue implementation is active.
#[derive(Debug, Clone)]
enum CpuKey {
    Indexed(EventKey),
    Reference(ReferenceEventKey),
}

impl<E> Queue<E> {
    #[inline]
    fn schedule(&mut self, at: SimTime, ev: E) {
        match self {
            Queue::Indexed(q) => q.schedule(at, ev),
            Queue::Reference(q) => q.schedule(at, ev),
        }
    }

    #[inline]
    fn schedule_keyed(&mut self, at: SimTime, ev: E) -> CpuKey {
        match self {
            Queue::Indexed(q) => CpuKey::Indexed(q.schedule_keyed(at, ev)),
            Queue::Reference(q) => CpuKey::Reference(q.schedule_keyed(at, ev)),
        }
    }

    #[inline]
    fn cancel(&mut self, key: CpuKey) {
        match (self, key) {
            (Queue::Indexed(q), CpuKey::Indexed(k)) => q.cancel(k),
            (Queue::Reference(q), CpuKey::Reference(k)) => q.cancel(k),
            _ => unreachable!("event key from a different queue implementation"),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Queue::Indexed(q) => q.pop(),
            Queue::Reference(q) => q.pop(),
        }
    }

    #[inline]
    fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            Queue::Indexed(q) => q.peek_time(),
            Queue::Reference(q) => q.peek_time(),
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        match self {
            Queue::Indexed(q) => q.is_empty(),
            Queue::Reference(q) => q.is_empty(),
        }
    }

    /// The indexed queue, which the speculative executor requires (the
    /// reference queue has no priorities or schedule tracking; eligibility
    /// gating sends reference-queue runs down the serial path).
    #[inline]
    fn indexed(&mut self) -> &mut EventQueue<E> {
        match self {
            Queue::Indexed(q) => q,
            Queue::Reference(_) => {
                unreachable!("speculative executor requires the indexed event queue")
            }
        }
    }
}

/// Where recorded protocol events go: the legacy in-memory [`Trace`]
/// (`run_traced`) or a pluggable streaming [`TraceSink`]
/// (`run_with_sink`, e.g. JSONL to a file).
#[derive(Debug)]
enum TraceTarget {
    Memory(Trace),
    Sink(Box<dyn TraceSink<TraceEvent> + Send>),
}

impl Clone for TraceTarget {
    fn clone(&self) -> Self {
        match self {
            TraceTarget::Memory(t) => TraceTarget::Memory(t.clone()),
            // Snapshots are taken only by the speculative executor, whose
            // eligibility gate already routes traced runs down the serial
            // path; a sink here means that gate was bypassed.
            TraceTarget::Sink(_) => {
                panic!("a streaming trace sink cannot be cloned into a system snapshot")
            }
        }
    }
}

/// Profiler key for a simulation-event kind.
fn ev_key(ev: &Ev) -> &'static str {
    match ev {
        Ev::Arrival { .. } => "ev.arrival",
        Ev::CpuDone { .. } => "ev.cpu_done",
        Ev::IoDone { .. } => "ev.io_done",
        Ev::MsgArrive { .. } => "ev.msg_arrive",
        Ev::FlushAsync { .. } => "ev.flush_async",
        Ev::Fault(_) => "ev.fault",
        Ev::RetryShip { .. } => "ev.retry_ship",
        Ev::Rerun { .. } => "ev.rerun",
        Ev::PlacementTick => "ev.placement_tick",
        Ev::PlacementCopyDone { .. } => "ev.placement_copy_done",
        Ev::Sample => "ev.sample",
        Ev::EndWarmup => "ev.end_warmup",
    }
}

/// Profiler key for a protocol-trace event kind.
fn event_key(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::Arrival { .. } => "event.arrival",
        TraceEvent::DeadlockAbort { .. } => "event.deadlock_abort",
        TraceEvent::InvalidationAbort { .. } => "event.invalidation_abort",
        TraceEvent::LocalCommit { .. } => "event.local_commit",
        TraceEvent::AsyncSent { .. } => "event.async_sent",
        TraceEvent::AsyncApplied { .. } => "event.async_applied",
        TraceEvent::AuthStarted { .. } => "event.auth_started",
        TraceEvent::AuthProcessed { .. } => "event.auth_processed",
        TraceEvent::AuthResolved { .. } => "event.auth_resolved",
        TraceEvent::Fault { .. } => "event.fault",
        TraceEvent::CrashAbort { .. } => "event.crash_abort",
        TraceEvent::Rejected { .. } => "event.rejected",
        TraceEvent::Failover { .. } => "event.failover",
        TraceEvent::RetryScheduled { .. } => "event.retry_scheduled",
        TraceEvent::Completion { .. } => "event.completion",
    }
}

#[derive(Debug, Clone)]
struct SiteState {
    cpu: MultiServer,
    locks: LockTable,
    /// Class A transactions currently running locally at this site.
    n_txns: usize,
    latest_central: CentralSnapshot,
    async_buffer: Vec<(LockId, u64)>,
    busy_at_warmup: f64,
    /// Master copy of this site's data: last write stamp per item.
    store: FxHashMap<LockId, u64>,
}

/// A delegated authentication in progress at a foreign shard: the shard
/// polls the master sites it homes on behalf of a transaction resident
/// elsewhere, aggregates their replies, and reports one verdict back.
#[derive(Debug, Clone)]
struct ForeignAuth {
    /// Site replies still outstanding.
    pending: usize,
    /// A negative reply was received this round.
    negative: bool,
    /// The transaction's resident shard (verdict destination).
    home: u32,
    /// The distinct master sites polled, in first-reference order —
    /// drives the eventual `AuthRelease` / `CommitMsg` fan-out.
    sites: Vec<usize>,
}

/// One shard of the central complex. The classic single-complex system
/// is the `K = 1` special case: one shard replicating every site's
/// partitions, with no cross-shard traffic ever generated.
#[derive(Debug, Clone)]
struct CentralState {
    cpu: MultiServer,
    locks: LockTable,
    /// Transactions resident at this shard.
    n_txns: usize,
    busy_at_warmup: f64,
    /// Replica of the data mastered by the sites this shard homes: last
    /// write stamp per item.
    store: FxHashMap<LockId, u64>,
    /// Delegated authentications this shard is running for transactions
    /// resident at other shards (always empty when `K = 1`). Keyed
    /// access only — never iterated, so determinism is unaffected.
    foreign_auth: FxHashMap<u64, ForeignAuth>,
}

/// One point of a sampled state time series (see
/// [`HybridSystem::run_sampled`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Sample time, seconds.
    pub at: f64,
    /// Central CPU queue length (including jobs in service).
    pub q_central: usize,
    /// Transactions resident at the central complex.
    pub n_central: usize,
    /// Mean local CPU queue length across sites.
    pub q_local_mean: f64,
    /// Transactions running locally, summed over sites.
    pub n_local_total: usize,
}

/// Result of the post-drain replica comparison (see
/// [`HybridSystem::run_drained`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Items with at least one committed write at a master site.
    pub items_checked: usize,
    /// Transactions still in flight after the drain (should be 0).
    pub in_flight_txns: usize,
    /// Items whose central-replica stamp differs from the master copy
    /// (should be empty).
    pub divergent: Vec<LockId>,
}

impl ConvergenceReport {
    /// `true` when the drain completed every transaction and the central
    /// replica matches every master copy.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.divergent.is_empty() && self.in_flight_txns == 0
    }
}

/// A cross-partition message staged by a speculative worker during a
/// window, delivered into the target partition's worker at the barrier.
///
/// The delivery time was already computed by the sender's own network
/// replica (each worker owns its partition's link-FIFO floors: site `i`
/// owns the up direction of link `i`, the central worker owns every down
/// direction), so the barrier only has to route the envelope.
#[derive(Debug, Clone)]
pub(crate) struct StagedSend {
    pub(crate) to: NodeId,
    pub(crate) deliver_at: SimTime,
    pub(crate) msg: Msg,
    pub(crate) snap: Option<CentralSnapshot>,
    /// The transaction record migrating with the message: `ShipTxn` and
    /// `RemoteCallReq` carry it origin → central, `RemoteCallResp` and
    /// `Reply` carry it back.
    pub(crate) txn: Option<Txn>,
    /// The worker's schedule-tracking length at the moment this send was
    /// staged. The serial run interleaves `MsgArrive` schedules with the
    /// event's other schedule calls in code order; the barrier replay
    /// uses this mark to reproduce that interleaving when assigning
    /// global serial stamps.
    pub(crate) sched_mark: u32,
}

/// One processed event in a speculative worker's window, with the range
/// ends (exclusive) of the schedule / send / metric-op log entries its
/// handling produced.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PopRec {
    pub(crate) at: SimTime,
    /// Tie-break priority the event popped with: its global serial stamp
    /// if a barrier assigned one, `u64::MAX` for events scheduled within
    /// the current window (resolved via the creating schedule's stamp).
    pub(crate) pri: u64,
    /// The worker-local queue sequence number (correlates the pop with
    /// the schedule call that created it).
    pub(crate) seq: u64,
    /// `EndWarmup` fires once in every worker; the merge counts it once.
    pub(crate) dup: bool,
    pub(crate) sched_end: u32,
    pub(crate) send_end: u32,
    pub(crate) ops_end: u32,
}

/// A pre-assigned arrival admission, fed to a site worker by the
/// driver's arrival shadow: the globally sequential transaction id, and
/// the route-RNG state to restore before the routing decision for
/// policies that consume random draws (the serial run interleaves those
/// draws across all sites in arrival order).
#[derive(Debug, Clone)]
pub(crate) struct ArrivalFeed {
    pub(crate) id: u64,
    pub(crate) route_rng: Option<SimRng>,
}

/// Per-worker state of the speculative window executor. Present only on
/// worker replicas (`HybridSystem::shard_init`); `None` in every serial
/// run, so the serial hot path pays one predicted branch per hook.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardCtx {
    /// Whether this worker owns the central-complex partition.
    pub(crate) central: bool,
    /// Pending pre-assigned arrivals for this site worker.
    pub(crate) feed: VecDeque<ArrivalFeed>,
    /// Cross-partition messages staged this window.
    pub(crate) staged_sends: Vec<StagedSend>,
    /// Site worker: abort marks for central-resident transactions whose
    /// site locks an authentication seizure displaced this window.
    pub(crate) staged_aborts: Vec<(SimTime, u64)>,
    /// Central worker: commit-path reads of transaction abort marks this
    /// window (`(time, txn, value)`) — the conflict oracle against
    /// `staged_aborts`.
    pub(crate) abort_reads: Vec<(SimTime, u64, bool)>,
    /// The window's pop log.
    pub(crate) pops: Vec<PopRec>,
    /// Conflict re-execution only: site-staged abort marks, time-ordered,
    /// applied to the transaction table as the clock passes each one.
    pub(crate) inject: VecDeque<(SimTime, u64)>,
}

/// Everything a speculative worker logged for one window, drained at the
/// barrier by [`HybridSystem::shard_take_window`].
#[derive(Debug)]
pub(crate) struct WindowLog {
    pub(crate) pops: Vec<PopRec>,
    pub(crate) scheds: Vec<(SimTime, EventKey)>,
    pub(crate) sends: Vec<StagedSend>,
    pub(crate) aborts: Vec<(SimTime, u64)>,
    pub(crate) reads: Vec<(SimTime, u64, bool)>,
    pub(crate) ops: Vec<MetricsOp>,
}

/// Phase of an in-flight partition migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MigrationPhase {
    /// Bulk copy on the wire; the source stays master and keeps
    /// absorbing writes (the delta is subsumed at switchover).
    Copying,
    /// Copy landed; new arrivals touching the partition park while the
    /// in-flight population drains, then the home switches atomically.
    Draining,
}

/// One in-flight partition migration.
#[derive(Debug, Clone)]
struct ActiveMigration {
    /// Monotonic migration id; stale `PlacementCopyDone` events from an
    /// aborted predecessor carry an older id and are ignored.
    id: u64,
    from: usize,
    to: usize,
    phase: MigrationPhase,
    /// Admissions parked during the drain, re-admitted (with their
    /// original arrival stamps) at switchover or abort:
    /// `(site, spec, arrival, attempt)`.
    parked: Vec<(usize, TxnSpec, SimTime, u32)>,
}

/// Runtime state of the adaptive-placement subsystem. Boxed behind an
/// `Option` on [`HybridSystem`]: `None` (the static policy with no
/// workload drift) leaves every legacy code path untouched, keeping
/// such runs bit-identical to a build without placement at all.
#[derive(Debug, Clone)]
struct PlacementRt {
    /// The live partition→home-site map (epoch-versioned).
    map: PlacementMap,
    /// The frozen epoch-0 map, for the counterfactual static class-B
    /// rate in [`PlacementReport`].
    initial: PlacementMap,
    /// Per-partition remote-access counters feeding the planner.
    stats: PlacementStats,
    /// Workload locality drift, when configured.
    drift: Option<DriftModel>,
    /// In-flight migrations by partition.
    active: FxHashMap<u32, ActiveMigration>,
    /// Monotonic migration-id source.
    mig_seq: u64,
    /// Per-partition count of in-flight transactions touching it.
    live_parts: Vec<u32>,
    /// Per-partition count of commit-message write applications still
    /// in flight from the central complex to the partition's home.
    pending_parts: Vec<u32>,
    /// Scratch list of distinct partitions (reused per admission).
    scratch: Vec<u32>,
    migrations_planned: u64,
    migrations_completed: u64,
    migrations_aborted: u64,
    bytes_moved: u64,
    parked_admissions: u64,
    class_a_admitted: u64,
    class_b_admitted: u64,
    class_b_static: u64,
}

impl PlacementRt {
    /// Collects the distinct partitions of a lock set into the scratch
    /// list (first-touch order; lock sets are ~10 entries, so the
    /// linear dedup beats hashing).
    fn scratch_partitions(&mut self, locks: &[(LockId, LockMode)]) {
        self.scratch.clear();
        let geo = *self.map.geometry();
        for &(l, _) in locks {
            let p = geo.partition_of(l);
            if !self.scratch.contains(&p) {
                self.scratch.push(p);
            }
        }
    }

    /// Same as [`PlacementRt::scratch_partitions`] for a write set.
    fn scratch_writes(&mut self, writes: &[(LockId, u64)]) {
        self.scratch.clear();
        let geo = *self.map.geometry();
        for &(l, _) in writes {
            let p = geo.partition_of(l);
            if !self.scratch.contains(&p) {
                self.scratch.push(p);
            }
        }
    }
}

/// The simulator. Construct with [`HybridSystem::new`], execute with
/// [`HybridSystem::run`].
///
/// # Examples
///
/// ```
/// use hls_core::{HybridSystem, RouterSpec, SystemConfig};
///
/// let cfg = SystemConfig::paper_default()
///     .with_total_rate(10.0)
///     .with_horizon(60.0, 10.0);
/// let metrics = HybridSystem::new(cfg, RouterSpec::QueueLength)
///     .expect("valid config")
///     .run();
/// assert!(metrics.completions > 0);
/// ```
#[derive(Debug, Clone)]
pub struct HybridSystem {
    pub(crate) cfg: SystemConfig,
    queue: Queue<Ev>,
    net: StarNetwork,
    sites: Vec<SiteState>,
    /// The central complex, as `K >= 1` shards. Index 0 is the whole
    /// complex in the classic unsharded configuration.
    centrals: Vec<CentralState>,
    /// Site → home-shard map (the hierarchical router's first hop).
    shard_map: ShardMap,
    /// Number of central shards (`shard_map.n_shards()`, cached).
    n_shards: usize,
    /// In-flight transactions, stored in a generational slab (dense
    /// slots; ids resolve through one Fx-hashed index map).
    txns: TxnTable,
    /// In-flight CPU jobs: work item plus the pending `CpuDone`
    /// cancellation key, keyed by self-describing slot-encoded ids.
    jobs: JobSlab<JobKind, CpuKey>,
    router: FailureAwareRouter,
    generator: TxnGenerator,
    arrivals: Vec<ArrivalProcess>,
    site_rngs: Vec<SimRng>,
    route_rng: SimRng,
    next_txn: u64,
    next_write: u64,
    /// Per-kind message counters, indexed by [`Msg::kind_index`].
    msg_counts: MsgCounts,
    metrics: MetricsSink,
    end: SimTime,
    trace: Option<TraceTarget>,
    /// Gated self-profiler (host wall-clock only; never reads or
    /// perturbs simulated time).
    profiler: Profiler,
    samples: Option<(f64, Vec<SamplePoint>)>,
    /// Per-site DBMS availability (faults only; all `true` otherwise).
    site_up: Vec<bool>,
    /// Central-complex availability.
    central_up: bool,
    /// Number of currently open fault windows (marks `during_outage`).
    active_faults: usize,
    /// Simulation events processed so far (see
    /// [`HybridSystem::run_counted`]).
    pub(crate) events_processed: u64,
    /// Free lists recycling the per-event vector payloads (auth lock
    /// lists, write sets, lock-id lists, site lists, victim lists) so
    /// the steady-state event loop stays off the allocator.
    pool_locks: VecPool<(LockId, LockMode)>,
    pool_writes: VecPool<(LockId, u64)>,
    pool_lockids: VecPool<LockId>,
    pool_sites: VecPool<usize>,
    pool_txnids: VecPool<u64>,
    /// Store-and-forward buffers, one per site link, for messages sent
    /// while the link is down; flushed in order on link recovery.
    deferred_links: Vec<VecDeque<DeferredSend>>,
    /// Messages that arrived at a crashed site; replayed in arrival order
    /// on recovery.
    deferred_site: Vec<VecDeque<(Msg, Option<CentralSnapshot>)>>,
    /// Messages that arrived at the crashed central complex (a central
    /// crash takes down every shard), with their destination shard.
    deferred_central: VecDeque<(NodeId, Msg, Option<CentralSnapshot>)>,
    /// Asynchronous-update and delegated-commit applications interrupted
    /// by a central crash; resubmitted at their shard on recovery (their
    /// messages were already consumed).
    central_replay: Vec<(usize, JobKind)>,
    /// Cross-shard lock requests denied under the no-wait rule.
    cross_denials: u64,
    /// Cross-shard lock requests granted by a foreign shard.
    remote_grant_count: u64,
    /// Peak simultaneous in-flight transactions (scaling report).
    peak_txns: usize,
    /// When set, every lock table's `check_invariants` runs after each
    /// event (see [`HybridSystem::run_validated`]). Test-only; off in
    /// measurement runs.
    validate_locks: bool,
    /// The routing policy this system was built with; worker replicas and
    /// the whole-run serial fallback of the speculative executor rebuild
    /// from it.
    pub(crate) router_spec: RouterSpec,
    /// Per-site CPU speed relative to `params.local_mips` (all 1.0 on
    /// homogeneous hardware); reported to routers via [`Observed`].
    site_speed: Vec<f64>,
    /// Per-central-shard CPU speed relative to `params.central_mips`.
    central_speed: Vec<f64>,
    /// Speculative-worker state; `None` for every serial run.
    shard: Option<Box<ShardCtx>>,
    /// Adaptive-placement runtime; `None` under the static policy with
    /// no workload drift (the legacy configuration).
    placement: Option<Box<PlacementRt>>,
}

impl HybridSystem {
    /// Builds a simulator from a configuration and a routing policy.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the violated constraint for an
    /// inconsistent configuration.
    pub fn new(cfg: SystemConfig, router: RouterSpec) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = cfg.params.n_sites;
        let streams = RngStreams::new(cfg.seed);
        let generator = TxnGenerator::new(cfg.workload_spec())?;
        let arrivals: Vec<ArrivalProcess> = match &cfg.site_profiles {
            Some(profiles) => profiles.iter().cloned().map(ArrivalProcess::new).collect(),
            None => (0..n)
                .map(|_| ArrivalProcess::new(cfg.arrival_profile.clone()))
                .collect(),
        };
        let mut sites: Vec<SiteState> = (0..n)
            .map(|i| SiteState {
                cpu: MultiServer::new(1, cfg.site_mips_of(i)),
                locks: LockTable::new(),
                n_txns: 0,
                latest_central: CentralSnapshot::default(),
                async_buffer: Vec::new(),
                busy_at_warmup: 0.0,
                store: FxHashMap::default(),
            })
            .collect();
        let shard_map = cfg
            .shards
            .resolve(n)
            .expect("shard spec validated with the config");
        let n_shards = shard_map.n_shards();
        let mut centrals: Vec<CentralState> = (0..n_shards)
            .map(|k| CentralState {
                cpu: MultiServer::new(cfg.params.central_servers, cfg.central_mips_of(k)),
                locks: LockTable::new(),
                n_txns: 0,
                busy_at_warmup: 0.0,
                store: FxHashMap::default(),
                foreign_auth: FxHashMap::default(),
            })
            .collect();
        if cfg.obs.profile {
            for s in &mut sites {
                s.locks.set_profiling(true);
            }
            for c in &mut centrals {
                c.locks.set_profiling(true);
            }
        }
        let warmup = SimTime::from_secs(cfg.warmup);
        let mut metrics = MetricsCollector::new(warmup);
        if cfg.obs.histograms {
            metrics.enable_histograms(n);
        }
        let placement = if cfg.placement_active() {
            let geo = PartitionGeometry::new(
                n,
                cfg.params.lockspace as u32,
                cfg.placement.parts_per_site,
            )?;
            let map = PlacementMap::new_static(geo);
            let drift = match cfg.drift {
                Some(spec) => Some(DriftModel::new(spec, cfg.workload_spec())?),
                None => None,
            };
            Some(Box::new(PlacementRt {
                initial: map.clone(),
                stats: PlacementStats::new(&geo),
                map,
                drift,
                active: FxHashMap::default(),
                mig_seq: 0,
                live_parts: vec![0; geo.n_partitions()],
                pending_parts: vec![0; geo.n_partitions()],
                scratch: Vec::new(),
                migrations_planned: 0,
                migrations_completed: 0,
                migrations_aborted: 0,
                bytes_moved: 0,
                parked_admissions: 0,
                class_a_admitted: 0,
                class_b_admitted: 0,
                class_b_static: 0,
            }))
        } else {
            None
        };
        let end = SimTime::from_secs(cfg.sim_time);
        let mut net =
            StarNetwork::new_sharded(n, n_shards, SimDuration::from_secs(cfg.params.comm_delay));
        if n_shards > 1 {
            net.set_home_shards((0..n).map(|i| shard_map.home_of(i)).collect());
        }
        // Heterogeneous topologies override each site's link delay; the
        // uniform star skips the call entirely, so its delivery-time
        // arithmetic is untouched (the homogeneity contract).
        let site_delays = cfg
            .site_link_delays()
            .unwrap_or_else(|| vec![cfg.params.comm_delay; n]);
        if cfg.islands.is_some() || cfg.link_delays.is_some() {
            net.set_site_delays(&site_delays);
        }
        // Relative CPU speeds fed to the routers' utilization
        // estimators; exactly 1.0 on nominal hardware.
        let site_speed: Vec<f64> = (0..n)
            .map(|i| cfg.site_mips_of(i) / cfg.params.local_mips)
            .collect();
        let central_speed: Vec<f64> = (0..n_shards)
            .map(|k| cfg.central_mips_of(k) / cfg.params.central_mips)
            .collect();
        Ok(HybridSystem {
            router: FailureAwareRouter::new(router.build_topo(n, &site_delays), cfg.failure_aware),
            site_speed,
            central_speed,
            generator,
            arrivals,
            site_rngs: (0..n).map(|i| streams.stream(i as u64)).collect(),
            route_rng: streams.stream(1_000_003),
            queue: Queue::Indexed(EventQueue::new()),
            net,
            sites,
            centrals,
            shard_map,
            n_shards,
            txns: TxnTable::new(),
            jobs: JobSlab::new(),
            next_txn: 1,
            next_write: 1,
            msg_counts: MsgCounts::new(),
            metrics: MetricsSink::Direct(metrics),
            end,
            trace: None,
            profiler: Profiler::new(cfg.obs.profile),
            samples: None,
            site_up: vec![true; n],
            central_up: true,
            active_faults: 0,
            events_processed: 0,
            pool_locks: VecPool::new(),
            pool_writes: VecPool::new(),
            pool_lockids: VecPool::new(),
            pool_sites: VecPool::new(),
            pool_txnids: VecPool::new(),
            deferred_links: (0..n).map(|_| VecDeque::new()).collect(),
            deferred_site: (0..n).map(|_| VecDeque::new()).collect(),
            deferred_central: VecDeque::new(),
            central_replay: Vec::new(),
            cross_denials: 0,
            remote_grant_count: 0,
            peak_txns: 0,
            validate_locks: false,
            router_spec: router,
            shard: None,
            placement,
            cfg,
        })
    }

    /// Enables protocol-event tracing (see [`Trace`]); use
    /// [`HybridSystem::run_traced`] to retrieve the trace.
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceTarget::Memory(Trace::new()));
    }

    /// Runs with tracing enabled, returning metrics and the protocol trace.
    #[must_use]
    pub fn run_traced(mut self) -> (RunMetrics, Trace) {
        self.enable_trace();
        let metrics = self.run_internal();
        let trace = match self.trace.take() {
            Some(TraceTarget::Memory(t)) => t,
            _ => Trace::new(),
        };
        (metrics, trace)
    }

    /// Runs with protocol events streamed to `sink` instead of being
    /// buffered in memory (e.g. a [`hls_obs::JsonlSink`] writing to a
    /// file). Returns the metrics and the sink; call the sink's
    /// [`TraceSink::flush`] to surface any deferred I/O error.
    ///
    /// Event content and order are identical to [`HybridSystem::run_traced`],
    /// and the metrics are bit-identical to an untraced [`HybridSystem::run`].
    #[must_use]
    pub fn run_with_sink(
        mut self,
        sink: Box<dyn TraceSink<TraceEvent> + Send>,
    ) -> (RunMetrics, Box<dyn TraceSink<TraceEvent> + Send>) {
        self.trace = Some(TraceTarget::Sink(sink));
        let metrics = self.run_internal();
        let sink = match self.trace.take() {
            Some(TraceTarget::Sink(s)) => s,
            _ => unreachable!("sink target replaced during run"),
        };
        (metrics, sink)
    }

    fn trace(&mut self, at: SimTime, f: impl FnOnce() -> TraceEvent) {
        if self.trace.is_none() && !self.profiler.enabled() {
            return;
        }
        let ev = f();
        self.profiler.count(event_key(&ev));
        match self.trace.as_mut() {
            Some(TraceTarget::Memory(t)) => t.record(at, ev),
            Some(TraceTarget::Sink(s)) => s.record(at.as_secs(), &ev),
            None => {}
        }
    }

    /// Runs the simulation to the configured horizon and returns the
    /// metrics measured after warm-up.
    #[must_use]
    pub fn run(mut self) -> RunMetrics {
        self.run_internal()
    }

    /// Like [`HybridSystem::run`], but also returns the number of events
    /// the main loop processed — the denominator for events/sec in
    /// `sim_bench`. The metrics are identical to [`HybridSystem::run`].
    #[must_use]
    pub fn run_counted(mut self) -> (RunMetrics, u64) {
        let metrics = self.run_internal();
        (metrics, self.events_processed)
    }

    /// Swaps the entire per-event hot path for the vendored pre-overhaul
    /// implementations: the `BinaryHeap` + tombstone-set event queue
    /// (see [`hls_sim::model`]), SipHash transaction/job maps, hashed
    /// per-kind message counters, and per-event vector allocation
    /// instead of pooling. `sim_bench` uses this to measure old-vs-new
    /// whole-run throughput inside one binary. Every decision is
    /// identical in both modes — metrics stay bit-for-bit the same.
    ///
    /// # Panics
    ///
    /// Panics if called after events have been scheduled (i.e. once a run
    /// has started); call it right after construction.
    pub fn use_reference_hot_path(&mut self) {
        assert!(
            self.queue.is_empty(),
            "use_reference_hot_path must be called before the run starts"
        );
        self.queue = Queue::Reference(ReferenceQueue::new());
        self.txns = TxnTable::reference();
        self.jobs = JobSlab::reference();
        self.msg_counts = MsgCounts::reference();
        self.pool_locks = VecPool::reference();
        self.pool_writes = VecPool::reference();
        self.pool_lockids = VecPool::reference();
        self.pool_sites = VecPool::reference();
        self.pool_txnids = VecPool::reference();
    }

    /// Runs while sampling system state every `interval` seconds,
    /// returning the metrics and the time series — used to visualize
    /// transient behaviour such as routing oscillations on stale state.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    #[must_use]
    pub fn run_sampled(mut self, interval: f64) -> (RunMetrics, Vec<SamplePoint>) {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "sample interval must be positive and finite, got {interval}"
        );
        self.samples = Some((interval, Vec::new()));
        self.queue
            .schedule(SimTime::from_secs(interval), Ev::Sample);
        let metrics = self.run_internal();
        let samples = self.samples.take().map(|(_, v)| v).unwrap_or_default();
        (metrics, samples)
    }

    /// Runs to the horizon with **lock-table validation**: after every
    /// simulation event, each site's and the central complex's
    /// [`hls_lockmgr::LockTable::check_invariants`] is executed, so any
    /// corruption of the wait-for graph, the owner index, or the arena
    /// queues panics at the event that introduced it rather than
    /// surfacing as skewed metrics. Orders of magnitude slower than
    /// [`HybridSystem::run`]; meant for tests (notably the fault-schedule
    /// equivalence run), not measurement.
    #[must_use]
    pub fn run_validated(mut self) -> RunMetrics {
        self.validate_locks = true;
        self.run_internal()
    }

    /// Asserts the internal invariants of every lock table in the
    /// system — all sites plus the central complex.
    ///
    /// # Panics
    ///
    /// Panics if any table's indexes disagree with its entries.
    pub fn check_lock_invariants(&self) {
        for site in &self.sites {
            site.locks.check_invariants();
        }
        for central in &self.centrals {
            central.locks.check_invariants();
        }
    }

    /// Runs to the horizon, then **drains**: arrivals stop but every
    /// in-flight transaction and protocol message is processed to
    /// completion, after which the replica stores are compared.
    ///
    /// Returns the metrics and a [`ConvergenceReport`] asserting that the
    /// central replica converged to the master copies — the end-to-end
    /// correctness property of the asynchronous coherency protocol. Note
    /// that drained metrics include post-horizon completions; use
    /// [`HybridSystem::run`] for measurement runs.
    #[must_use]
    pub fn run_drained(mut self) -> (RunMetrics, ConvergenceReport) {
        let metrics = self.run_internal();
        // Process everything left in the pipeline.
        while let Some((now, ev)) = self.queue.pop() {
            self.events_processed += 1;
            self.handle(now, ev);
        }
        let report = self.convergence_report();
        (metrics, report)
    }

    /// Compares the central replica against the master copies item by
    /// item. Only meaningful once the system is fully drained.
    fn convergence_report(&self) -> ConvergenceReport {
        let mut items_checked = 0;
        let mut divergent = Vec::new();
        for (site, state) in self.sites.iter().enumerate() {
            let replica = &self.centrals[self.shard_map.home_of(site) as usize].store;
            for (&item, &stamp) in &state.store {
                debug_assert_eq!(self.master_site(item), site);
                items_checked += 1;
                if replica.get(&item) != Some(&stamp) {
                    divergent.push(item);
                }
            }
        }
        // Items written only centrally must exist at their master too.
        for central in &self.centrals {
            for (&item, &stamp) in &central.store {
                let site = self.master_site(item);
                if self.sites[site].store.get(&item) != Some(&stamp) && !divergent.contains(&item) {
                    divergent.push(item);
                }
            }
        }
        divergent.sort_unstable();
        divergent.dedup();
        ConvergenceReport {
            items_checked,
            in_flight_txns: self.txns.len(),
            divergent,
        }
    }

    pub(crate) fn run_internal(&mut self) -> RunMetrics {
        let total = Timer::start_if(self.profiler.enabled());
        for site in 0..self.cfg.params.n_sites {
            let first = {
                let rng = &mut self.site_rngs[site];
                self.arrivals[site].next_after(rng, SimTime::ZERO)
            };
            self.queue.schedule(first, Ev::Arrival { site });
        }
        self.queue
            .schedule(SimTime::from_secs(self.cfg.warmup), Ev::EndWarmup);
        // The controller only wakes under an adaptive policy; a
        // drift-only runtime (static policy) never migrates, it just
        // classifies and counts.
        if self.placement.is_some() && self.cfg.placement.is_adaptive() {
            self.queue.schedule(
                SimTime::from_secs(self.cfg.placement.interval),
                Ev::PlacementTick,
            );
        }
        // Fault transitions are ordinary simulation events. An empty
        // schedule adds nothing to the queue, keeping the run bit-identical
        // to a fault-free build. (Indexed, not iterated: `FaultEvent` is
        // `Copy`, so this schedules without cloning the whole schedule
        // per replication.)
        for i in 0..self.cfg.fault_schedule.events().len() {
            let fault = self.cfg.fault_schedule.events()[i];
            self.queue
                .schedule(SimTime::from_secs(fault.at), Ev::Fault(fault.kind));
        }

        while let Some(t) = self.queue.peek_time() {
            if t >= self.end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event");
            self.events_processed += 1;
            self.handle(now, ev);
            if self.validate_locks {
                self.check_lock_invariants();
            }
        }
        self.profiler.stop(TOTAL_KEY, total);
        self.finalize()
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        let timer = Timer::start_if(self.profiler.enabled());
        let key = ev_key(&ev);
        self.dispatch(now, ev);
        self.profiler.stop(key, timer);
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival { site } => self.on_arrival(now, site),
            Ev::CpuDone { loc, job } => self.on_cpu_done(now, loc, job),
            Ev::IoDone { txn } => self.on_io_done(now, txn),
            Ev::MsgArrive { to, msg, snap } => self.on_msg(now, to, msg, snap),
            Ev::FlushAsync { site } => self.flush_async(now, site),
            Ev::Fault(kind) => self.on_fault(now, kind),
            Ev::RetryShip {
                spec,
                site,
                arrival,
                attempt,
            } => self.admit(now, site, spec, arrival, attempt),
            Ev::Rerun { txn } => {
                // The victim may have been killed by a crash while backing
                // off.
                if self.txns.contains(txn) {
                    self.start_call_cpu(now, txn);
                }
            }
            Ev::PlacementTick => self.on_placement_tick(now),
            Ev::PlacementCopyDone { partition, mig } => {
                self.on_placement_copy_done(now, partition, mig);
            }
            Ev::Sample => self.on_sample(now),
            Ev::EndWarmup => self.on_end_warmup(now),
        }
    }

    fn on_sample(&mut self, now: SimTime) {
        let Some((interval, samples)) = self.samples.as_mut() else {
            return;
        };
        let q_local_sum: usize = self.sites.iter().map(|s| s.cpu.queue_len()).sum();
        let n_local_total: usize = self.sites.iter().map(|s| s.n_txns).sum();
        samples.push(SamplePoint {
            at: now.as_secs(),
            q_central: self.centrals.iter().map(|c| c.cpu.queue_len()).sum(),
            n_central: self.centrals.iter().map(|c| c.n_txns).sum(),
            q_local_mean: q_local_sum as f64 / self.sites.len() as f64,
            n_local_total,
        });
        let next = now + SimDuration::from_secs(*interval);
        if next < self.end {
            self.queue.schedule(next, Ev::Sample);
        }
    }

    fn on_end_warmup(&mut self, now: SimTime) {
        for s in &mut self.sites {
            s.busy_at_warmup = s.cpu.busy_server_seconds(now);
        }
        for c in &mut self.centrals {
            c.busy_at_warmup = c.cpu.busy_server_seconds(now);
        }
    }

    fn on_arrival(&mut self, now: SimTime, site: usize) {
        // Schedule the next arrival at this site.
        let next = {
            let rng = &mut self.site_rngs[site];
            self.arrivals[site].next_after(rng, now)
        };
        if next < self.end {
            self.queue.schedule(next, Ev::Arrival { site });
        }

        // Under workload drift the placement runtime's model draws the
        // transaction instead of the stationary generator.
        let spec = {
            let rng = &mut self.site_rngs[site];
            match self.placement.as_ref().and_then(|p| p.drift.as_ref()) {
                Some(model) => model.generate(rng, site, now.as_secs()),
                None => self.generator.generate(rng, site),
            }
        };
        self.metrics.on_arrival(now);
        self.admit(now, site, spec, now, 0);
    }

    /// Admits a (possibly retried) arrival: decides route / retry / reject
    /// under the current component availability and dispatches it. With
    /// everything up this reduces exactly to the fault-free path.
    fn admit(
        &mut self,
        now: SimTime,
        site: usize,
        mut spec: TxnSpec,
        arrival: SimTime,
        attempt: u32,
    ) {
        if let Some(p) = self.placement.as_mut() {
            // Park admissions touching a draining partition: the
            // switchover needs the in-flight population on the partition
            // to reach zero, and these would keep it alive. They are
            // re-admitted (original arrival stamp, so the parked delay
            // shows up in their response time) when the migration
            // switches or aborts.
            let geo = *p.map.geometry();
            let draining = spec
                .locks
                .iter()
                .map(|&(l, _)| geo.partition_of(l))
                .find(|part| {
                    matches!(
                        p.active.get(part),
                        Some(m) if m.phase == MigrationPhase::Draining
                    )
                });
            if let Some(part) = draining {
                p.parked_admissions += 1;
                p.active
                    .get_mut(&part)
                    .expect("draining partition has a migration")
                    .parked
                    .push((site, spec, arrival, attempt));
                return;
            }
            // Online A↔B reclassification: the class follows the *live*
            // placement map, so a migrated hot partition turns its
            // followers' remote transactions back into class A.
            spec.class = if spec.locks.iter().all(|&(l, _)| p.map.master_of(l) == site) {
                TxnClass::A
            } else {
                TxnClass::B
            };
        }
        let local_ok = self.site_up[site];
        let central_ok = self.central_up && self.net.link_is_up(site);
        let remote_mode = self.cfg.class_b_mode == ClassBMode::RemoteCalls;

        // Speculative workers: the driver's arrival shadow pre-assigns
        // ids in global arrival order and, for draw-consuming policies,
        // hands over the route-RNG state the serial run would see — both
        // interleave across all sites, which no single partition can
        // reproduce on its own.
        let shard_id = if let Some(shard) = &mut self.shard {
            let f = shard
                .feed
                .pop_front()
                .expect("speculative arrival feed exhausted");
            if let Some(rng) = f.route_rng {
                self.route_rng = rng;
            }
            Some(f.id)
        } else {
            None
        };

        let route = if spec.class == TxnClass::B {
            let ok = central_ok && (!remote_mode || local_ok);
            let timer = Timer::start_if(self.profiler.enabled());
            let decision = self
                .router
                .decide_class_b(ok, attempt < self.cfg.fault_max_retries);
            self.profiler.stop("router.decide_b", timer);
            match decision {
                FaultAwareDecision::Run(route) => route,
                FaultAwareDecision::Retry => {
                    let next_attempt = attempt + 1;
                    self.metrics.on_availability(now, |a| a.retries += 1);
                    self.trace(now, || TraceEvent::RetryScheduled {
                        site,
                        attempt: next_attempt,
                    });
                    let at = now + SimDuration::from_secs(self.cfg.fault_retry_backoff);
                    self.queue.schedule(
                        at,
                        Ev::RetryShip {
                            spec,
                            site,
                            arrival,
                            attempt: next_attempt,
                        },
                    );
                    return;
                }
                FaultAwareDecision::Reject => {
                    self.metrics
                        .on_availability(now, |a| a.rejected_class_b += 1);
                    self.trace(now, || TraceEvent::Rejected {
                        site,
                        class: TxnClass::B,
                    });
                    return;
                }
            }
        } else {
            let timer = Timer::start_if(self.profiler.enabled());
            let decision = {
                let obs = self.observe(site);
                let mut ctx = RouteCtx {
                    now,
                    site,
                    obs,
                    params: &self.cfg.params,
                    rng: &mut self.route_rng,
                };
                self.router.decide_class_a(&mut ctx, local_ok, central_ok)
            };
            self.profiler.stop("router.decide_a", timer);
            match decision {
                FaultAwareDecision::Run(route) => {
                    self.metrics.on_route_class_a(now, route == Route::Central);
                    route
                }
                FaultAwareDecision::Retry => unreachable!("class A never retries"),
                FaultAwareDecision::Reject => {
                    self.metrics
                        .on_availability(now, |a| a.rejected_class_a += 1);
                    self.trace(now, || TraceEvent::Rejected {
                        site,
                        class: TxnClass::A,
                    });
                    return;
                }
            }
        };

        // Failure-aware overrides of the configured strategy.
        let failover = self.cfg.failure_aware && (!local_ok || !central_ok);
        if failover {
            self.metrics.on_availability(now, |a| {
                if local_ok {
                    a.failover_local += 1;
                } else {
                    a.failover_shipped += 1;
                }
            });
        }

        let id = match shard_id {
            Some(id) => id,
            None => {
                let id = self.next_txn;
                self.next_txn += 1;
                id
            }
        };
        let class = spec.class;
        if let Some(p) = self.placement.as_mut() {
            let measuring = now >= SimTime::from_secs(self.cfg.warmup);
            // Remote-access statistics for the planner and the live
            // in-flight counters gating switchover.
            p.scratch_partitions(&spec.locks);
            let geo = *p.map.geometry();
            for i in 0..p.scratch.len() {
                let part = p.scratch[i];
                p.live_parts[part as usize] += 1;
            }
            for &(l, _) in &spec.locks {
                p.stats.record(geo.partition_of(l), site);
            }
            if measuring {
                match class {
                    TxnClass::A => p.class_a_admitted += 1,
                    TxnClass::B => p.class_b_admitted += 1,
                }
                // Counterfactual class under the frozen epoch-0 map.
                if !spec
                    .locks
                    .iter()
                    .all(|&(l, _)| p.initial.master_of(l) == site)
                {
                    p.class_b_static += 1;
                }
            }
        }
        let mut txn = Txn::new(id, spec, route, arrival);
        txn.during_outage = self.active_faults > 0;
        if class == TxnClass::B && remote_mode {
            // The transaction stays at the origin: it starts with its setup
            // I/O rather than terminal-message forwarding.
            txn.remote_calls = true;
            txn.phase = Phase::SetupIo;
        }
        self.txns.insert(id, txn);
        if self.txns.len() > self.peak_txns {
            self.peak_txns = self.txns.len();
        }
        self.trace(now, || TraceEvent::Arrival {
            txn: id,
            site,
            class,
            route,
        });
        if failover {
            self.trace(now, || TraceEvent::Failover { txn: id, route });
        }

        match route {
            Route::Local => {
                self.sites[site].n_txns += 1;
                self.schedule_io(now, id, self.cfg.params.setup_io);
            }
            Route::Central if self.txns[id].remote_calls => {
                self.schedule_io(now, id, self.cfg.params.setup_io);
            }
            Route::Central if !local_ok => {
                // The site's DBMS is down but its terminal front-end still
                // forwards: ship without the origin CPU burst.
                self.txns.get_mut(id).expect("txn").phase = Phase::InTransit;
                let dest = self.shard_node(site);
                self.send(
                    now,
                    NodeId::local(site as u32),
                    dest,
                    Msg::ShipTxn { txn: id },
                );
            }
            Route::Central => {
                let instr = self.cfg.params.ship_origin_instr + self.cfg.params.ship_msg_instr;
                self.submit_cpu(now, Locale::Site(site), JobKind::TxnPhase(id), instr);
            }
        }
    }

    /// What a router at `site` can observe right now.
    fn observe(&self, site: usize) -> Observed {
        let s = &self.sites[site];
        let snap = if self.cfg.instantaneous_state {
            self.central_snapshot(self.shard_map.home_of(site) as usize)
        } else {
            s.latest_central
        };
        Observed {
            q_local: s.cpu.queue_len() as f64,
            q_central: snap.q_cpu as f64,
            n_local: s.n_txns as f64,
            n_central: snap.n_txns as f64,
            locks_local: s.locks.grants_count() as f64,
            locks_central: snap.n_locks as f64,
            local_speed: self.site_speed[site],
            central_speed: self.central_speed[self.shard_map.home_of(site) as usize],
        }
    }

    /// State snapshot of central shard `k`, piggybacked on its messages
    /// to the sites it homes.
    fn central_snapshot(&self, k: usize) -> CentralSnapshot {
        CentralSnapshot {
            q_cpu: self.centrals[k].cpu.queue_len(),
            n_txns: self.centrals[k].n_txns,
            n_locks: self.centrals[k].locks.grants_count(),
        }
    }

    /// The central shard homing `site` — the only central node its link
    /// reaches. Shard 0 (== [`NodeId::CENTRAL`]) for every site when the
    /// complex is unsharded, so `K = 1` traffic is byte-identical to the
    /// classic system.
    fn shard_node(&self, site: usize) -> NodeId {
        NodeId::shard(self.shard_map.home_of(site))
    }

    /// The shard a central transaction resides at: its origin's home.
    fn home_shard_of(&self, id: u64) -> usize {
        self.shard_map.home_of(self.txns[id].spec.origin) as usize
    }

    // ------------------------------------------------------------------
    // CPU plumbing
    // ------------------------------------------------------------------

    fn cpu_of(&mut self, loc: Locale) -> &mut MultiServer {
        match loc {
            Locale::Site(i) => &mut self.sites[i].cpu,
            Locale::Central(k) => &mut self.centrals[k].cpu,
        }
    }

    fn submit_cpu(&mut self, now: SimTime, loc: Locale, kind: JobKind, instr: f64) {
        let job_id = self.jobs.insert(kind);
        if let Some(start) = self.cpu_of(loc).submit(now, Job::new(job_id, instr)) {
            let key = self.queue.schedule_keyed(
                start.done_at,
                Ev::CpuDone {
                    loc,
                    job: start.job_id,
                },
            );
            self.jobs.set_key(start.job_id, key);
        }
    }

    fn on_cpu_done(&mut self, now: SimTime, loc: Locale, job_id: u64) {
        // The firing consumed this completion's cancellation key.
        let _ = self.jobs.take_key(job_id);
        let (job, next) = self.cpu_of(loc).complete(now, job_id);
        if let Some(start) = next {
            let key = self.queue.schedule_keyed(
                start.done_at,
                Ev::CpuDone {
                    loc,
                    job: start.job_id,
                },
            );
            self.jobs.set_key(start.job_id, key);
        }
        let kind = self.jobs.remove(job.id).expect("unknown CPU job");
        match kind {
            JobKind::TxnPhase(txn) => self.txn_cpu_done(now, txn, loc),
            JobKind::AuthProcess { txn, site, locks } => {
                self.finish_auth_process(now, txn, site, &locks);
                self.pool_locks.put(locks);
            }
            JobKind::ApplyAsync { from, writes } => {
                let Locale::Central(j) = loc else {
                    unreachable!("ApplyAsync at a local site")
                };
                self.finish_apply_async(now, j, from, &writes);
                self.pool_writes.put(writes);
            }
            JobKind::ApplyCommit { txn, site, writes } => {
                self.finish_apply_commit(now, txn, site, &writes);
                self.pool_writes.put(writes);
            }
            JobKind::ShardLock {
                txn,
                lock,
                mode,
                home,
            } => {
                let Locale::Central(j) = loc else {
                    unreachable!("ShardLock at a local site")
                };
                self.finish_shard_lock(now, j, txn, lock, mode, home);
            }
            JobKind::ShardAuthFanout { txn, home, locks } => {
                let Locale::Central(j) = loc else {
                    unreachable!("ShardAuthFanout at a local site")
                };
                self.finish_shard_auth_fanout(now, j, txn, home, &locks);
                self.pool_locks.put(locks);
            }
            JobKind::ShardCommitApply { txn, locks, writes } => {
                let Locale::Central(j) = loc else {
                    unreachable!("ShardCommitApply at a local site")
                };
                self.finish_shard_commit_apply(now, j, txn, &locks, &writes);
                self.pool_locks.put(locks);
                self.pool_writes.put(writes);
            }
        }
    }

    fn schedule_io(&mut self, now: SimTime, txn: u64, secs: f64) {
        self.queue
            .schedule(now + SimDuration::from_secs(secs), Ev::IoDone { txn });
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    fn locale_of(&self, txn: &Txn) -> Locale {
        match txn.route {
            Route::Local => Locale::Site(txn.spec.origin),
            Route::Central => Locale::Central(self.shard_map.home_of(txn.spec.origin) as usize),
        }
    }

    fn txn_cpu_done(&mut self, now: SimTime, id: u64, loc: Locale) {
        // A crash may have killed the transaction while this burst was on a
        // surviving CPU; the work is wasted.
        if !self.txns.contains(id) {
            return;
        }
        let phase = self.txns[id].phase;
        match phase {
            Phase::OriginMsgCpu => {
                let origin = self.txns[id].spec.origin;
                debug_assert_eq!(loc, Locale::Site(origin));
                let remote = self.txns[id].remote_calls;
                self.txns.get_mut(id).expect("txn").phase = Phase::InTransit;
                let msg = if remote {
                    Msg::RemoteCallReq { txn: id }
                } else {
                    Msg::ShipTxn { txn: id }
                };
                let dest = self.shard_node(origin);
                self.send(now, NodeId::local(origin as u32), dest, msg);
            }
            Phase::InitCpu => {
                if self.txns[id].remote_calls && !self.txns[id].is_rerun() {
                    self.origin_issue_call(now, id);
                } else {
                    self.start_call_cpu(now, id);
                }
            }
            Phase::CallCpu => self.request_current_lock(now, id),
            Phase::CommitCpu => match self.txns[id].route {
                Route::Local => self.finish_local_commit(now, id),
                Route::Central => self.send_auth_requests(now, id),
            },
            other => unreachable!("CPU completion in non-CPU phase {other:?}"),
        }
    }

    fn on_io_done(&mut self, now: SimTime, id: u64) {
        // Crash victims' pending I/O completions fire harmlessly.
        let Some(txn) = self.txns.get_mut(id) else {
            return;
        };
        match txn.phase {
            Phase::SetupIo => {
                txn.phase = Phase::InitCpu;
                let p = &self.cfg.params;
                let (loc, instr) = match txn.route {
                    Route::Local => (
                        Locale::Site(txn.spec.origin),
                        p.init_instr + p.io_overhead_instr,
                    ),
                    // Remote-call transactions initialize at their origin.
                    Route::Central if txn.remote_calls => (
                        Locale::Site(txn.spec.origin),
                        p.init_instr + p.io_overhead_instr,
                    ),
                    Route::Central => (
                        Locale::Central(self.shard_map.home_of(txn.spec.origin) as usize),
                        (p.init_instr - p.ship_origin_instr) + p.io_overhead_instr,
                    ),
                };
                self.submit_cpu(now, loc, JobKind::TxnPhase(id), instr);
            }
            Phase::CallIo => self.advance_call(now, id),
            other => unreachable!("I/O completion in non-I/O phase {other:?}"),
        }
    }

    /// Remote-call mode: the origin spends per-call message handling, then
    /// sends the next remote function call to the central complex.
    fn origin_issue_call(&mut self, now: SimTime, id: u64) {
        let origin = self.txns[id].spec.origin;
        self.txns.get_mut(id).expect("txn").phase = Phase::OriginMsgCpu;
        self.submit_cpu(
            now,
            Locale::Site(origin),
            JobKind::TxnPhase(id),
            self.cfg.params.ship_msg_instr,
        );
    }

    /// Submits the CPU burst of the current database call.
    fn start_call_cpu(&mut self, now: SimTime, id: u64) {
        let (is_rerun, loc) = {
            let txn = &self.txns[id];
            (txn.is_rerun(), self.locale_of(txn))
        };
        self.txns.get_mut(id).expect("txn").phase = Phase::CallCpu;
        let p = &self.cfg.params;
        let instr = if is_rerun {
            p.db_call_instr
        } else {
            p.db_call_instr + p.io_overhead_instr
        };
        self.submit_cpu(now, loc, JobKind::TxnPhase(id), instr);
    }

    fn request_current_lock(&mut self, now: SimTime, id: u64) {
        let (lock, mode, loc) = {
            let txn = &self.txns[id];
            let (lock, mode) = txn.spec.locks[txn.call_idx];
            (lock, mode, self.locale_of(txn))
        };
        if let Locale::Central(k) = loc {
            let j = self.shard_map.home_of_lock(self.generator.spec(), lock) as usize;
            if j != k {
                // The lock is owned by a foreign shard: phase one of the
                // cross-shard exchange. The requester blocks for the round
                // trip; the owner answers grant-or-deny (no-wait), so no
                // deadlock cycle can span shards.
                let txn = self.txns.get_mut(id).expect("txn");
                txn.phase = Phase::LockWait;
                txn.wait_since = now;
                self.send(
                    now,
                    NodeId::shard(k as u32),
                    NodeId::shard(j as u32),
                    Msg::ShardLockReq {
                        txn: id,
                        lock,
                        mode,
                        home: k as u32,
                    },
                );
                return;
            }
        }
        let owner = OwnerId(id);
        let table = match loc {
            Locale::Site(i) => &mut self.sites[i].locks,
            Locale::Central(k) => &mut self.centrals[k].locks,
        };
        match table.request(owner, lock, mode) {
            RequestOutcome::Granted | RequestOutcome::AlreadyHeld => {
                self.after_lock_granted(now, id);
            }
            RequestOutcome::Queued => {
                // Mark the requester as waiting first: breaking a cycle may
                // immediately grant its lock via the victim's releases.
                let txn = self.txns.get_mut(id).expect("txn");
                txn.phase = Phase::LockWait;
                txn.wait_since = now;
                self.break_deadlocks(now, id, loc);
            }
        }
    }

    /// Detects and breaks deadlock cycles created by `requester`'s wait,
    /// aborting victims per the configured policy until no cycle remains
    /// or the requester itself is the victim.
    ///
    /// "In the case of a contention that leads into a deadlock the
    /// transaction is aborted and all locks held are released."
    fn break_deadlocks(&mut self, now: SimTime, requester: u64, loc: Locale) {
        loop {
            let (cycle, timer) = {
                let table = match loc {
                    Locale::Site(i) => &self.sites[i].locks,
                    Locale::Central(k) => &self.centrals[k].locks,
                };
                if table.waiting_for(OwnerId(requester)).is_none() {
                    return; // granted while breaking a previous cycle
                }
                let timer = Timer::start_if(self.profiler.enabled());
                (table.deadlock_cycle(OwnerId(requester)), timer)
            };
            self.profiler.stop("lock.deadlock_scan", timer);
            if cycle.is_empty() {
                return;
            }
            let victim = self.select_victim(&cycle, requester, loc);
            let grants = match loc {
                Locale::Site(i) => self.sites[i].locks.release_all(OwnerId(victim)),
                Locale::Central(k) => self.centrals[k].locks.release_all(OwnerId(victim)),
            };
            let route = match loc {
                Locale::Site(_) => {
                    self.metrics.on_abort(now, |a| a.deadlock_local += 1);
                    Route::Local
                }
                Locale::Central(_) => {
                    self.metrics.on_abort(now, |a| a.deadlock_central += 1);
                    Route::Central
                }
            };
            self.trace(now, || TraceEvent::DeadlockAbort { txn: victim, route });
            debug_assert_eq!(
                self.txns[victim].phase,
                Phase::LockWait,
                "deadlock victim must be blocked"
            );
            self.txns.get_mut(victim).expect("victim").begin_rerun(true);
            if let Locale::Central(k) = loc {
                self.release_remote_grants(now, victim, k);
            }
            self.resume_grants(now, &grants, loc);
            // Restart after a short jittered backoff rather than
            // immediately: with deterministic service times an immediate
            // restart can trap a fixed set of conflicting transactions in
            // a periodic abort/rerun orbit that never commits anything.
            // The jitter is derived purely from the run seed, the victim
            // and its attempt count, so runs stay bit-identical for any
            // thread count.
            let backoff = self.deadlock_backoff(victim, loc);
            self.txns.get_mut(victim).expect("victim").backoff_total += backoff.as_secs();
            self.metrics.on_backoff(now, backoff);
            self.queue
                .schedule(now + backoff, Ev::Rerun { txn: victim });
            if victim == requester {
                return;
            }
        }
    }

    /// Releases every cross-shard grant a rerunning central transaction
    /// holds: one `ShardRelease` from its resident shard `k` to each
    /// foreign shard recorded in `remote_shards`. No-op (no sends) when
    /// the complex is a single shard.
    fn release_remote_grants(&mut self, now: SimTime, id: u64, k: usize) {
        let shards = std::mem::take(&mut self.txns.get_mut(id).expect("txn").remote_shards);
        for j in shards {
            self.send(
                now,
                NodeId::shard(k as u32),
                NodeId::shard(j),
                Msg::ShardRelease { txn: id },
            );
        }
    }

    /// Applies the configured victim-selection policy to a cycle.
    fn select_victim(&self, cycle: &[OwnerId], requester: u64, loc: Locale) -> u64 {
        match self.cfg.deadlock_victim {
            crate::config::DeadlockVictim::Requester => requester,
            crate::config::DeadlockVictim::Youngest => {
                cycle.iter().map(|o| o.0).max().expect("non-empty cycle")
            }
            crate::config::DeadlockVictim::FewestLocks => {
                let table = match loc {
                    Locale::Site(i) => &self.sites[i].locks,
                    Locale::Central(k) => &self.centrals[k].locks,
                };
                cycle
                    .iter()
                    .map(|o| o.0)
                    .min_by_key(|&o| (table.held_count(OwnerId(o)), u64::MAX - o))
                    .expect("non-empty cycle")
            }
        }
    }

    /// Deterministic restart delay for a deadlock victim: up to
    /// [`SystemConfig::deadlock_backoff_window`] seconds (default: one
    /// database-call service time at the victim's locale), jittered by a
    /// hash of `(seed, victim, attempts)` so consecutive reruns of the
    /// same transaction desynchronize from their conflict partners.
    fn deadlock_backoff(&self, victim: u64, loc: Locale) -> SimDuration {
        let window = self.cfg.deadlock_backoff_window.unwrap_or_else(|| {
            let p = &self.cfg.params;
            // The victim's actual locale speed (== the nominal MIPS on
            // homogeneous hardware, keeping the legacy arithmetic).
            let mips = match loc {
                Locale::Site(s) => self.cfg.site_mips_of(s),
                Locale::Central(k) => self.cfg.central_mips_of(k),
            };
            p.db_call_instr / mips
        });
        let attempts = u64::from(self.txns[victim].attempts);
        let h = crate::experiment::splitmix64(
            self.cfg.seed ^ victim.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (attempts << 32),
        );
        let frac = (h % 1024) as f64 / 1024.0;
        SimDuration::from_secs(window * frac)
    }

    fn after_lock_granted(&mut self, now: SimTime, id: u64) {
        let txn = self.txns.get_mut(id).expect("txn");
        if txn.phase == Phase::LockWait {
            txn.lock_wait_total += (now - txn.wait_since).as_secs();
        }
        if txn.is_rerun() {
            // Re-runs find all data in memory: no I/O.
            self.advance_call(now, id);
        } else {
            txn.phase = Phase::CallIo;
            self.schedule_io(now, id, self.cfg.params.io_per_call);
        }
    }

    fn advance_call(&mut self, now: SimTime, id: u64) {
        let (done, pause_remote, origin) = {
            let txn = self.txns.get_mut(id).expect("txn");
            txn.call_idx += 1;
            (
                txn.call_idx >= txn.spec.locks.len(),
                txn.remote_calls && !txn.is_rerun(),
                txn.spec.origin,
            )
        };
        if done {
            self.begin_commit(now, id);
        } else if pause_remote {
            // Return the function-call result; the origin issues the next
            // call after another round trip.
            self.txns.get_mut(id).expect("txn").phase = Phase::InTransit;
            let from = self.shard_node(origin);
            self.send(
                now,
                from,
                NodeId::local(origin as u32),
                Msg::RemoteCallResp { txn: id },
            );
        } else {
            self.start_call_cpu(now, id);
        }
    }

    fn begin_commit(&mut self, now: SimTime, id: u64) {
        let marked = self.txns[id].marked_abort;
        self.shard_note_abort_read(now, id, marked);
        if marked {
            self.abort_and_rerun(now, id);
            return;
        }
        let route = {
            let txn = self.txns.get_mut(id).expect("txn");
            txn.phase = Phase::CommitCpu;
            txn.commit_since = now;
            txn.route
        };
        let loc = self.locale_of(&self.txns[id]);
        let instr = match route {
            // Commit processing: send the asynchronous update message.
            Route::Local => self.cfg.params.async_update_instr,
            // Commit processing: send one authentication message per
            // involved master site.
            Route::Central => {
                let sites = self.auth_sites_of(id);
                let n = sites.len();
                let old =
                    std::mem::replace(&mut self.txns.get_mut(id).expect("txn").auth_sites, sites);
                self.pool_sites.put(old);
                self.cfg.params.auth_instr * n as f64
            }
        };
        self.submit_cpu(now, loc, JobKind::TxnPhase(id), instr);
    }

    /// The master (home) site of a lock: the live placement map when the
    /// placement runtime is active, the paper's frozen slice partition
    /// otherwise.
    #[inline]
    fn master_site(&self, l: LockId) -> usize {
        match &self.placement {
            Some(p) => p.map.master_of(l),
            None => self.generator.spec().master_of(l),
        }
    }

    /// Distinct master sites of the transaction's locks, in first-reference
    /// order (deterministic).
    fn auth_sites_of(&mut self, id: u64) -> Vec<usize> {
        let mut sites = self.pool_sites.take();
        let txn = &self.txns[id];
        for &(lock, _) in &txn.spec.locks {
            let m = self.master_site(lock);
            if !sites.contains(&m) {
                sites.push(m);
            }
        }
        sites
    }

    /// A transaction found marked for abort (invalidation / authentication
    /// seizure / failed authentication): re-run, keeping its current locks
    /// ("locks ... are not released after an abort").
    fn abort_and_rerun(&mut self, now: SimTime, id: u64) {
        let route = self.txns[id].route;
        match route {
            Route::Local => self.metrics.on_abort(now, |a| a.local_invalidated += 1),
            Route::Central => self.metrics.on_abort(now, |a| a.central_invalidated += 1),
        }
        self.trace(now, || TraceEvent::InvalidationAbort { txn: id, route });
        self.txns.get_mut(id).expect("txn").begin_rerun(false);
        self.start_call_cpu(now, id);
    }

    // ------------------------------------------------------------------
    // Local commit and asynchronous propagation
    // ------------------------------------------------------------------

    fn finish_local_commit(&mut self, now: SimTime, id: u64) {
        {
            let txn = self.txns.get_mut(id).expect("txn");
            txn.commit_total += (now - txn.commit_since).as_secs();
        }
        // The mark may have been set while the commit burst was queued.
        if self.txns[id].marked_abort {
            self.abort_and_rerun(now, id);
            return;
        }
        let site = self.txns[id].spec.origin;
        let owner = OwnerId(id);

        let grants = self.sites[site].locks.release_all(owner);
        self.resume_grants(now, &grants, Locale::Site(site));

        let mut updated = self.pool_lockids.take();
        updated.extend(self.txns[id].spec.updated_locks());
        self.trace(now, || TraceEvent::LocalCommit {
            txn: id,
            site,
            updated: updated.clone(),
        });
        if !updated.is_empty() {
            // Apply the writes to the master copy and stamp them for
            // propagation to the central replica.
            let mut writes = self.pool_writes.take();
            for &l in &updated {
                let stamp = self.next_write;
                self.next_write += 1;
                self.sites[site].store.insert(l, stamp);
                self.sites[site].locks.incr_coherence(l);
                writes.push((l, stamp));
            }
            match self.cfg.async_batch_window {
                None => {
                    self.trace(now, || TraceEvent::AsyncSent {
                        site,
                        locks: writes.iter().map(|&(l, _)| l).collect(),
                    });
                    let dest = self.shard_node(site);
                    self.send(
                        now,
                        NodeId::local(site as u32),
                        dest,
                        Msg::AsyncUpdate { from: site, writes },
                    );
                }
                Some(window) => {
                    let buffer_was_empty = self.sites[site].async_buffer.is_empty();
                    self.sites[site].async_buffer.extend(writes.iter().copied());
                    self.pool_writes.put(writes);
                    if buffer_was_empty {
                        self.queue.schedule(
                            now + SimDuration::from_secs(window),
                            Ev::FlushAsync { site },
                        );
                    }
                }
            }
        }
        self.pool_lockids.put(updated);

        self.sites[site].n_txns -= 1;
        let txn = self.txns.remove(id).expect("txn");
        let rt = now - txn.arrival;
        let attempts = txn.attempts;
        let breakdown = txn.phase_breakdown(rt.as_secs());
        self.trace(now, || TraceEvent::Completion {
            txn: id,
            class: TxnClass::A,
            route: Route::Local,
            response: rt,
            attempts,
            breakdown,
        });
        self.metrics
            .on_local_a_done(now, site, rt, attempts, &breakdown);
        if txn.during_outage {
            self.metrics.on_outage_response(now, rt);
        }
        self.router.on_local_completion(site, rt);
        self.placement_release_txn(now, &txn.spec.locks);
    }

    fn flush_async(&mut self, now: SimTime, site: usize) {
        // A crashed site keeps its durable update queue for the catch-up
        // replay on recovery.
        if !self.site_up[site] {
            return;
        }
        let writes = std::mem::take(&mut self.sites[site].async_buffer);
        if !writes.is_empty() {
            self.trace(now, || TraceEvent::AsyncSent {
                site,
                locks: writes.iter().map(|&(l, _)| l).collect(),
            });
            let dest = self.shard_node(site);
            self.send(
                now,
                NodeId::local(site as u32),
                dest,
                Msg::AsyncUpdate { from: site, writes },
            );
        }
    }

    fn finish_apply_async(
        &mut self,
        now: SimTime,
        j: usize,
        from: usize,
        writes: &[(LockId, u64)],
    ) {
        // Invalidate central holders of the updated elements and apply the
        // writes to the site's home-shard replica.
        let mut invalidated = self.pool_txnids.take();
        for &(lock, stamp) in writes {
            for (holder, _) in self.centrals[j].locks.holders(lock) {
                if let Some(t) = self.txns.get_mut(holder.0) {
                    if !t.marked_abort {
                        invalidated.push(holder.0);
                    }
                    t.marked_abort = true;
                }
            }
            if self.placement.is_some() {
                // After a switchover the coherence count protecting this
                // update lives at the *old* home, so a pre-migration
                // update can race a newer post-migration central write —
                // stamp-wins keeps the replica from regressing.
                let e = self.centrals[j].store.entry(lock).or_insert(stamp);
                *e = (*e).max(stamp);
            } else {
                self.centrals[j].store.insert(lock, stamp);
            }
        }
        self.trace(now, || TraceEvent::AsyncApplied {
            site: from,
            locks: writes.iter().map(|&(l, _)| l).collect(),
            invalidated: invalidated.clone(),
        });
        self.pool_txnids.put(invalidated);
        let mut acks = self.pool_lockids.take();
        acks.extend(writes.iter().map(|&(l, _)| l));
        self.send(
            now,
            NodeId::shard(j as u32),
            NodeId::local(from as u32),
            Msg::AsyncAck { locks: acks },
        );
    }

    // ------------------------------------------------------------------
    // Authentication phase
    // ------------------------------------------------------------------

    fn send_auth_requests(&mut self, now: SimTime, id: u64) {
        {
            let txn = self.txns.get_mut(id).expect("txn");
            txn.commit_total += (now - txn.commit_since).as_secs();
        }
        let marked = self.txns[id].marked_abort;
        self.shard_note_abort_read(now, id, marked);
        if marked {
            self.abort_and_rerun(now, id);
            return;
        }
        let spec = *self.generator.spec();
        let k = self.home_shard_of(id);
        // Partition the authentication fan-out: sites homed by the
        // resident shard are polled directly; each foreign shard is asked
        // once, via a delegated `ShardAuthReq` covering every site it
        // homes. One reply is expected per direct site and per foreign
        // shard. With a single shard the partition is trivial (all
        // direct) and the fan-out matches the unsharded protocol exactly.
        let (n_sites, foreign) = {
            let mut own = 0usize;
            let mut foreign: Vec<u32> = Vec::new();
            for &site in &self.txns[id].auth_sites {
                let h = self.shard_map.home_of(site);
                if h as usize == k {
                    own += 1;
                } else if !foreign.contains(&h) {
                    foreign.push(h);
                }
            }
            let txn = self.txns.get_mut(id).expect("txn");
            txn.phase = Phase::AuthWait;
            txn.auth_since = now;
            txn.auth_pending = own + foreign.len();
            txn.auth_negative = false;
            (txn.auth_sites.len(), foreign)
        };
        // Clone the site list only when someone is listening (mirrors
        // `trace`'s own gate).
        if self.trace.is_some() || self.profiler.enabled() {
            let sites = self.txns[id].auth_sites.clone();
            self.trace(now, || TraceEvent::AuthStarted { txn: id, sites });
        }
        for i in 0..n_sites {
            let site = self.txns[id].auth_sites[i];
            if self.shard_map.home_of(site) as usize != k {
                continue;
            }
            let mut locks = self.pool_locks.take();
            locks.extend(
                self.txns[id]
                    .spec
                    .locks
                    .iter()
                    .copied()
                    .filter(|&(l, _)| self.master_site(l) == site),
            );
            self.send(
                now,
                NodeId::shard(k as u32),
                NodeId::local(site as u32),
                Msg::AuthRequest { txn: id, locks },
            );
        }
        for j in foreign {
            let mut locks = self.pool_locks.take();
            locks.extend(
                self.txns[id]
                    .spec
                    .locks
                    .iter()
                    .copied()
                    .filter(|&(l, _)| self.shard_map.home_of(spec.master_of(l)) == j),
            );
            self.send(
                now,
                NodeId::shard(k as u32),
                NodeId::shard(j),
                Msg::ShardAuthReq {
                    txn: id,
                    home: k as u32,
                    locks,
                },
            );
        }
    }

    fn finish_auth_process(
        &mut self,
        now: SimTime,
        id: u64,
        site: usize,
        locks: &[(LockId, LockMode)],
    ) {
        // A crash may have killed the requester while this burst was
        // queued; don't seize locks for the dead. (A speculative site
        // worker never holds the central-resident requester's record,
        // but fault-free it is alive by construction: the requester can
        // only resolve — and disappear — once every auth reply is in,
        // and this site's reply has not been sent yet.)
        if self.shard.is_none() && !self.txns.contains(id) {
            return;
        }
        // Coherence check: any in-flight asynchronous update on the
        // requested elements forces a negative acknowledgement.
        let positive = {
            let table = &self.sites[site].locks;
            locks.iter().all(|&(l, _)| table.coherence(l) == 0)
        };
        let mut displaced_all = self.pool_txnids.take();
        if positive {
            let owner = OwnerId(id);
            for &(lock, mode) in locks {
                let out = self.sites[site].locks.force_acquire(lock, owner, mode);
                for victim in out.displaced {
                    if let Some(t) = self.txns.get_mut(victim.0) {
                        if !t.marked_abort {
                            displaced_all.push(victim.0);
                        }
                        t.marked_abort = true;
                    } else if let Some(shard) = self.shard.as_mut() {
                        // A central-resident victim (an earlier auth
                        // seizure at this site): its record lives in the
                        // central worker. Stage the abort mark — the
                        // barrier applies it there and checks it against
                        // the central worker's optimistic commit-path
                        // reads, rolling the central window back on a
                        // same-window race.
                        shard.staged_aborts.push((now, victim.0));
                    }
                }
                self.resume_grants(now, &out.grants, Locale::Site(site));
            }
        }
        self.trace(now, || TraceEvent::AuthProcessed {
            txn: id,
            site,
            positive,
            displaced: displaced_all.clone(),
        });
        let dest = self.shard_node(site);
        self.send(
            now,
            NodeId::local(site as u32),
            dest,
            Msg::AuthReply { txn: id, positive },
        );
        self.pool_txnids.put(displaced_all);
    }

    fn on_auth_reply(&mut self, now: SimTime, id: u64, positive: bool) {
        let resolved = {
            // The transaction may have been killed by a crash while the
            // reply was in flight.
            let Some(txn) = self.txns.get_mut(id) else {
                return;
            };
            debug_assert_eq!(txn.phase, Phase::AuthWait);
            txn.auth_pending -= 1;
            if !positive {
                txn.auth_negative = true;
            }
            txn.auth_pending == 0
        };
        if resolved {
            self.resolve_auth(now, id);
        }
    }

    fn resolve_auth(&mut self, now: SimTime, id: u64) {
        let (negative, invalidated, n_sites) = {
            let txn = self.txns.get_mut(id).expect("txn");
            txn.auth_wait_total += (now - txn.auth_since).as_secs();
            (txn.auth_negative, txn.marked_abort, txn.auth_sites.len())
        };
        self.shard_note_abort_read(now, id, invalidated);
        if negative || invalidated {
            // Failed authentication: release any locks seized at the master
            // sites, then re-execute and repeat the process. Sites homed by
            // a foreign shard are released through that shard's delegation
            // record (one `ShardAuthAbort` per foreign shard).
            let k = self.home_shard_of(id);
            let from = NodeId::shard(k as u32);
            let mut foreign: Vec<u32> = Vec::new();
            for i in 0..n_sites {
                let site = self.txns[id].auth_sites[i];
                let h = self.shard_map.home_of(site);
                if h as usize == k {
                    self.send(
                        now,
                        from,
                        NodeId::local(site as u32),
                        Msg::AuthRelease { txn: id },
                    );
                } else if !foreign.contains(&h) {
                    foreign.push(h);
                }
            }
            for j in foreign {
                self.send(now, from, NodeId::shard(j), Msg::ShardAuthAbort { txn: id });
            }
            if negative && !invalidated {
                self.metrics.on_abort(now, |a| a.central_neg_ack += 1);
            } else {
                self.metrics.on_abort(now, |a| a.central_invalidated += 1);
            }
            self.trace(now, || TraceEvent::AuthResolved {
                txn: id,
                committed: false,
            });
            self.txns.get_mut(id).expect("txn").begin_rerun(false);
            self.start_call_cpu(now, id);
        } else {
            // Commit: release central locks, fan out commit messages, and
            // notify the origin.
            self.trace(now, || TraceEvent::AuthResolved {
                txn: id,
                committed: true,
            });
            // Apply the transaction's writes to the replica partitions the
            // resident shard homes and stamp them for the commit fan-out to
            // the master sites; foreign-shard partitions are applied by
            // their home shard on `ShardCommit`.
            let spec = *self.generator.spec();
            let k = self.home_shard_of(id);
            let from = NodeId::shard(k as u32);
            let mut updated = self.pool_lockids.take();
            updated.extend(self.txns[id].spec.updated_locks());
            let mut writes = self.pool_writes.take();
            for &l in &updated {
                let stamp = self.next_write;
                self.next_write += 1;
                if self.shard_map.home_of_lock(&spec, l) as usize == k {
                    self.centrals[k].store.insert(l, stamp);
                }
                writes.push((l, stamp));
            }
            self.pool_lockids.put(updated);
            let owner = OwnerId(id);
            let grants = self.centrals[k].locks.release_all(owner);
            self.resume_grants(now, &grants, Locale::Central(k));
            self.centrals[k].n_txns -= 1;
            {
                let txn = self.txns.get_mut(id).expect("txn");
                txn.in_central_count = false;
                // The `ShardCommit` fan-out below releases the grants held
                // at foreign shards.
                txn.remote_shards.clear();
            }
            let mut foreign: Vec<u32> = Vec::new();
            for i in 0..n_sites {
                let site = self.txns[id].auth_sites[i];
                let h = self.shard_map.home_of(site);
                if h as usize != k {
                    if !foreign.contains(&h) {
                        foreign.push(h);
                    }
                    continue;
                }
                let mut site_writes = self.pool_writes.take();
                site_writes.extend(
                    writes
                        .iter()
                        .copied()
                        .filter(|&(l, _)| self.master_site(l) == site),
                );
                self.placement_commit_pending(&site_writes);
                self.send(
                    now,
                    from,
                    NodeId::local(site as u32),
                    Msg::CommitMsg {
                        txn: id,
                        writes: site_writes,
                    },
                );
            }
            for j in foreign {
                let mut locks = self.pool_locks.take();
                locks.extend(
                    self.txns[id]
                        .spec
                        .locks
                        .iter()
                        .copied()
                        .filter(|&(l, _)| self.shard_map.home_of(spec.master_of(l)) == j),
                );
                let mut shard_writes = self.pool_writes.take();
                shard_writes.extend(
                    writes
                        .iter()
                        .copied()
                        .filter(|&(l, _)| self.shard_map.home_of(spec.master_of(l)) == j),
                );
                self.send(
                    now,
                    from,
                    NodeId::shard(j),
                    Msg::ShardCommit {
                        txn: id,
                        locks,
                        writes: shard_writes,
                    },
                );
            }
            self.pool_writes.put(writes);
            let origin = self.txns[id].spec.origin;
            self.send(
                now,
                from,
                NodeId::local(origin as u32),
                Msg::Reply { txn: id },
            );
        }
    }

    fn finish_apply_commit(
        &mut self,
        now: SimTime,
        id: u64,
        site: usize,
        writes: &[(LockId, u64)],
    ) {
        for &(l, stamp) in writes {
            self.sites[site].store.insert(l, stamp);
        }
        let grants = self.sites[site].locks.release_all(OwnerId(id));
        self.resume_grants(now, &grants, Locale::Site(site));
        self.placement_commit_applied(now, writes);
    }

    // ------------------------------------------------------------------
    // Adaptive data placement (no-ops when `self.placement` is `None`)
    // ------------------------------------------------------------------

    /// Placement bookkeeping for a transaction leaving the system:
    /// decrement the live counters of the partitions it touched and try
    /// the switchover of any draining migration those counters gated.
    fn placement_release_txn(&mut self, now: SimTime, locks: &[(LockId, LockMode)]) {
        let Some(p) = self.placement.as_mut() else {
            return;
        };
        p.scratch_partitions(locks);
        for i in 0..p.scratch.len() {
            let part = p.scratch[i] as usize;
            p.live_parts[part] -= 1;
        }
        if p.active.is_empty() {
            return;
        }
        let parts = p.scratch.clone();
        for part in parts {
            self.try_switchover(now, part);
        }
    }

    /// A commit message carrying writes was sent towards a master site:
    /// its partitions gain an in-flight application, blocking their
    /// switchover until [`HybridSystem::placement_commit_applied`].
    fn placement_commit_pending(&mut self, writes: &[(LockId, u64)]) {
        if writes.is_empty() {
            return;
        }
        let Some(p) = self.placement.as_mut() else {
            return;
        };
        p.scratch_writes(writes);
        for i in 0..p.scratch.len() {
            let part = p.scratch[i] as usize;
            p.pending_parts[part] += 1;
        }
    }

    /// The write set of a commit message reached the master store (the
    /// normal application burst, or the redo-logged crash path).
    fn placement_commit_applied(&mut self, now: SimTime, writes: &[(LockId, u64)]) {
        if writes.is_empty() {
            return;
        }
        let Some(p) = self.placement.as_mut() else {
            return;
        };
        p.scratch_writes(writes);
        for i in 0..p.scratch.len() {
            let part = p.scratch[i] as usize;
            p.pending_parts[part] -= 1;
        }
        if p.active.is_empty() {
            return;
        }
        let parts = p.scratch.clone();
        for part in parts {
            self.try_switchover(now, part);
        }
    }

    /// Controller activation: decay the remote-access statistics, plan
    /// migrations under the cost model, and start their bulk copies.
    fn on_placement_tick(&mut self, now: SimTime) {
        if self.placement.is_none() {
            return;
        }
        let next = now + SimDuration::from_secs(self.cfg.placement.interval);
        if next < self.end {
            self.queue.schedule(next, Ev::PlacementTick);
        }
        // The controller runs at the central complex; while it is down,
        // skip the round (statistics keep accumulating).
        if !self.central_up {
            return;
        }
        let geo = *self.placement.as_ref().expect("checked").map.geometry();
        // Per-partition master-copy counts — each migration's bulk size.
        let mut items = vec![0u64; geo.n_partitions()];
        for site in &self.sites {
            for &item in site.store.keys() {
                items[geo.partition_of(item) as usize] += 1;
            }
        }
        let plans = {
            let p = self.placement.as_mut().expect("checked");
            let mut migrating = vec![false; geo.n_partitions()];
            for &part in p.active.keys() {
                migrating[part as usize] = true;
            }
            let plans = plan(&self.cfg.placement, &p.map, &p.stats, &items, &migrating);
            p.stats.decay();
            plans
        };
        for m in plans {
            // Never start a copy into or out of a crashed site.
            if !self.site_up[m.from as usize] || !self.site_up[m.to as usize] {
                continue;
            }
            let bytes = items[m.partition as usize] * self.cfg.placement.item_bytes;
            let secs = bytes as f64 / self.cfg.placement.bandwidth;
            let mig = {
                let p = self.placement.as_mut().expect("checked");
                let id = p.mig_seq;
                p.mig_seq += 1;
                p.migrations_planned += 1;
                p.bytes_moved += bytes;
                p.active.insert(
                    m.partition,
                    ActiveMigration {
                        id,
                        from: m.from as usize,
                        to: m.to as usize,
                        phase: MigrationPhase::Copying,
                        parked: Vec::new(),
                    },
                );
                id
            };
            self.queue.schedule(
                now + SimDuration::from_secs(secs),
                Ev::PlacementCopyDone {
                    partition: m.partition,
                    mig,
                },
            );
        }
    }

    /// A migration's bulk copy landed: enter the draining phase and
    /// switch over immediately if the partition is already quiescent.
    fn on_placement_copy_done(&mut self, now: SimTime, partition: u32, mig: u64) {
        {
            let Some(p) = self.placement.as_mut() else {
                return;
            };
            let Some(m) = p.active.get_mut(&partition) else {
                return; // aborted by a crash while the copy was in flight
            };
            if m.id != mig {
                return; // stale completion of an aborted predecessor
            }
            m.phase = MigrationPhase::Draining;
        }
        self.try_switchover(now, partition);
    }

    /// Atomic switchover: once a draining partition has no live
    /// transactions and no in-flight commit applications, move its
    /// master copies to the new home, bump the map epoch, and re-admit
    /// the parked arrivals (now classified under the new map).
    fn try_switchover(&mut self, now: SimTime, partition: u32) {
        let ready = {
            let Some(p) = self.placement.as_ref() else {
                return;
            };
            matches!(
                p.active.get(&partition),
                Some(m) if m.phase == MigrationPhase::Draining
            ) && p.live_parts[partition as usize] == 0
                && p.pending_parts[partition as usize] == 0
        };
        if !ready {
            return;
        }
        let (from, to, parked, geo) = {
            let p = self.placement.as_mut().expect("checked");
            let m = p.active.remove(&partition).expect("checked");
            (m.from, m.to, m.parked, *p.map.geometry())
        };
        // Move the master copies. Entry order is map-iteration order, but
        // the moved set is a set — the resulting stores are identical
        // regardless; stamp-wins guards the (unreachable in practice)
        // case of a leftover entry at the target.
        let moved: Vec<(LockId, u64)> = self.sites[from]
            .store
            .iter()
            .filter(|&(&item, _)| geo.partition_of(item) == partition)
            .map(|(&item, &stamp)| (item, stamp))
            .collect();
        for (item, stamp) in moved {
            self.sites[from].store.remove(&item);
            self.sites[to]
                .store
                .entry(item)
                .and_modify(|e| *e = (*e).max(stamp))
                .or_insert(stamp);
        }
        {
            let p = self.placement.as_mut().expect("checked");
            p.map.apply(&Migration {
                partition,
                from: from as u32,
                to: to as u32,
            });
            p.stats.clear_partition(partition);
            p.migrations_completed += 1;
        }
        for (site, spec, arrival, attempt) in parked {
            self.admit(now, site, spec, arrival, attempt);
        }
    }

    /// Aborts in-flight migrations selected by `pred` — a site crash
    /// kills those copying from or to the site; a central crash kills
    /// all of them (the copy and the switchover are coordinated
    /// centrally). The copy is discarded, the map keeps its epoch, and
    /// parked admissions are released under the unchanged map.
    fn abort_migrations(&mut self, now: SimTime, mut pred: impl FnMut(&ActiveMigration) -> bool) {
        if self.placement.is_none() {
            return;
        }
        let aborted: Vec<ActiveMigration> = {
            let p = self.placement.as_mut().expect("checked");
            let mut parts: Vec<u32> = p
                .active
                .iter()
                .filter(|&(_, m)| pred(m))
                .map(|(&part, _)| part)
                .collect();
            // Map iteration order must not leak into admission order.
            parts.sort_unstable();
            parts
                .into_iter()
                .map(|part| {
                    p.migrations_aborted += 1;
                    p.active.remove(&part).expect("selected above")
                })
                .collect()
        };
        for m in aborted {
            for (site, spec, arrival, attempt) in m.parked {
                self.admit(now, site, spec, arrival, attempt);
            }
        }
    }

    // ------------------------------------------------------------------
    // Cross-shard coordination (sharded central complex)
    // ------------------------------------------------------------------

    /// CPU burst done at foreign shard `j`: answer a cross-shard lock
    /// request grant-or-deny. Cross-shard requests never park in a
    /// foreign wait queue (the no-wait rule) — a parked foreign waiter
    /// could close a deadlock cycle invisible to the per-shard detector.
    fn finish_shard_lock(
        &mut self,
        now: SimTime,
        j: usize,
        id: u64,
        lock: LockId,
        mode: LockMode,
        home: u32,
    ) {
        // The requester may have been killed by a crash while this burst
        // was queued; its cleanup already released any grants it held here.
        if !self.txns.contains(id) {
            return;
        }
        let owner = OwnerId(id);
        let granted = match self.centrals[j].locks.request(owner, lock, mode) {
            RequestOutcome::Granted | RequestOutcome::AlreadyHeld => true,
            RequestOutcome::Queued => {
                let grants = self.centrals[j].locks.cancel_wait(owner);
                self.resume_grants(now, &grants, Locale::Central(j));
                false
            }
        };
        self.send(
            now,
            NodeId::shard(j as u32),
            NodeId::shard(home),
            Msg::ShardLockResp {
                txn: id,
                lock,
                granted,
            },
        );
    }

    /// Cross-shard lock response arriving back at the requester's resident
    /// shard `k`. A denial aborts and reruns the requester exactly like a
    /// deadlock victim (the no-wait rule turns would-be cross-shard waits
    /// into restarts).
    fn on_shard_lock_resp(&mut self, now: SimTime, k: usize, id: u64, lock: LockId, granted: bool) {
        let Some(txn) = self.txns.get_mut(id) else {
            return; // killed by a crash while the response was in flight
        };
        if granted {
            self.remote_grant_count += 1;
            let j = self.shard_map.home_of_lock(self.generator.spec(), lock);
            if !txn.remote_shards.contains(&j) {
                txn.remote_shards.push(j);
            }
            self.after_lock_granted(now, id);
            return;
        }
        debug_assert_eq!(txn.phase, Phase::LockWait, "denied txn must be blocked");
        self.cross_denials += 1;
        let grants = self.centrals[k].locks.release_all(OwnerId(id));
        self.metrics.on_abort(now, |a| a.deadlock_central += 1);
        self.trace(now, || TraceEvent::DeadlockAbort {
            txn: id,
            route: Route::Central,
        });
        self.txns.get_mut(id).expect("txn").begin_rerun(true);
        self.release_remote_grants(now, id, k);
        self.resume_grants(now, &grants, Locale::Central(k));
        let backoff = self.deadlock_backoff(id, Locale::Central(k));
        self.txns.get_mut(id).expect("txn").backoff_total += backoff.as_secs();
        self.metrics.on_backoff(now, backoff);
        self.queue.schedule(now + backoff, Ev::Rerun { txn: id });
    }

    /// An `AuthReply` landing at shard `s`: either the aggregation step of
    /// a delegation this shard runs for a foreign resident, or a direct
    /// reply to one of this shard's own residents.
    fn shard_auth_reply(&mut self, now: SimTime, s: usize, id: u64, positive: bool) {
        if let Some(entry) = self.centrals[s].foreign_auth.get_mut(&id) {
            entry.pending -= 1;
            if !positive {
                entry.negative = true;
            }
            if entry.pending == 0 {
                let (home, verdict) = (entry.home, !entry.negative);
                // Keep the entry: its site list drives the later
                // `ShardCommit` / `ShardAuthAbort` fan-out.
                self.send(
                    now,
                    NodeId::shard(s as u32),
                    NodeId::shard(home),
                    Msg::ShardAuthReply {
                        txn: id,
                        positive: verdict,
                    },
                );
            }
            return;
        }
        self.on_auth_reply(now, id, positive);
    }

    /// CPU burst done at foreign shard `j`: run the delegated
    /// authentication exchange with the master sites this shard homes,
    /// recording a [`ForeignAuth`] entry to aggregate their replies.
    fn finish_shard_auth_fanout(
        &mut self,
        now: SimTime,
        j: usize,
        id: u64,
        home: u32,
        locks: &[(LockId, LockMode)],
    ) {
        // A crash may have killed the requester while this burst was
        // queued; its cleanup also removed any delegation entry — don't
        // recreate one for the dead.
        if !self.txns.contains(id) {
            return;
        }
        let spec = *self.generator.spec();
        let mut sites = self.pool_sites.take();
        for &(l, _) in locks {
            let m = spec.master_of(l);
            if !sites.contains(&m) {
                sites.push(m);
            }
        }
        let n_sites = sites.len();
        let prev = self.centrals[j].foreign_auth.insert(
            id,
            ForeignAuth {
                pending: n_sites,
                negative: false,
                home,
                sites,
            },
        );
        debug_assert!(prev.is_none(), "duplicate delegation for txn {id}");
        if let Some(p) = prev {
            self.pool_sites.put(p.sites);
        }
        for i in 0..n_sites {
            let site = self.centrals[j].foreign_auth[&id].sites[i];
            let mut site_locks = self.pool_locks.take();
            site_locks.extend(
                locks
                    .iter()
                    .copied()
                    .filter(|&(l, _)| spec.master_of(l) == site),
            );
            self.send(
                now,
                NodeId::shard(j as u32),
                NodeId::local(site as u32),
                Msg::AuthRequest {
                    txn: id,
                    locks: site_locks,
                },
            );
        }
    }

    /// CPU burst done at foreign shard `j`: apply a delegated commit —
    /// write the replica partitions this shard homes, release the
    /// committer's grants, and fan the commit out to the master sites.
    fn finish_shard_commit_apply(
        &mut self,
        now: SimTime,
        j: usize,
        id: u64,
        locks: &[(LockId, LockMode)],
        writes: &[(LockId, u64)],
    ) {
        let spec = *self.generator.spec();
        for &(l, stamp) in writes {
            self.centrals[j].store.insert(l, stamp);
        }
        let grants = self.centrals[j].locks.release_all(OwnerId(id));
        self.resume_grants(now, &grants, Locale::Central(j));
        if let Some(entry) = self.centrals[j].foreign_auth.remove(&id) {
            self.pool_sites.put(entry.sites);
        }
        // Recompute the site fan-out from the lock list rather than the
        // delegation entry — a central crash clears the entries, but the
        // locks travel with the message.
        let mut sites = self.pool_sites.take();
        for &(l, _) in locks {
            let m = spec.master_of(l);
            if !sites.contains(&m) {
                sites.push(m);
            }
        }
        for &site in &sites {
            let mut site_writes = self.pool_writes.take();
            site_writes.extend(
                writes
                    .iter()
                    .copied()
                    .filter(|&(l, _)| spec.master_of(l) == site),
            );
            self.send(
                now,
                NodeId::shard(j as u32),
                NodeId::local(site as u32),
                Msg::CommitMsg {
                    txn: id,
                    writes: site_writes,
                },
            );
        }
        self.pool_sites.put(sites);
    }

    // ------------------------------------------------------------------
    // Lock grant resumption
    // ------------------------------------------------------------------

    fn resume_grants(&mut self, now: SimTime, grants: &[Grant], loc: Locale) {
        for g in grants {
            let id = g.owner.0;
            // A grant can surface for a transaction a crash just killed
            // (the cascade of its fellow victims' releases); skip it — its
            // own release follows in the same crash handler.
            if !self.txns.contains(id) {
                continue;
            }
            debug_assert_eq!(
                self.txns[id].phase,
                Phase::LockWait,
                "grant to non-waiting txn"
            );
            debug_assert_eq!(self.locale_of(&self.txns[id]), loc);
            self.after_lock_granted(now, id);
        }
    }

    // ------------------------------------------------------------------
    // Messaging
    // ------------------------------------------------------------------

    fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: Msg) {
        let timer = Timer::start_if(self.profiler.enabled());
        self.msg_counts.record(&msg);
        // Every message from the central complex to a local site carries a
        // state snapshot (of the sending shard) for the routing strategies.
        let snap = (from.is_central() && !to.is_central())
            .then(|| self.central_snapshot(from.shard_index()));
        self.deliver(now, from, to, msg, snap);
        self.profiler.stop("net.send", timer);
    }

    /// Puts a message on its link, or into the link's store-and-forward
    /// buffer while the link is down (flushed in order on recovery).
    fn deliver(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        msg: Msg,
        snap: Option<CentralSnapshot>,
    ) {
        match self.net.try_send(now, from, to, ()) {
            Ok(Envelope { deliver_at, .. }) => {
                if let Some(shard) = self.shard.as_mut() {
                    // Speculative window: stage the message for barrier
                    // delivery into the target partition's worker. With a
                    // migrating message kind the transaction record
                    // travels too — the sender is done with it (the
                    // serial code sets `Phase::InTransit` or drops the
                    // record before sending).
                    let txn = match &msg {
                        Msg::ShipTxn { txn }
                        | Msg::RemoteCallReq { txn }
                        | Msg::RemoteCallResp { txn }
                        | Msg::Reply { txn } => Some(
                            self.txns
                                .remove(*txn)
                                .expect("migrating transaction record"),
                        ),
                        _ => None,
                    };
                    let sched_mark = self.queue.indexed().tracked_len() as u32;
                    shard.staged_sends.push(StagedSend {
                        to,
                        deliver_at,
                        msg,
                        snap,
                        txn,
                        sched_mark,
                    });
                } else {
                    self.queue
                        .schedule(deliver_at, Ev::MsgArrive { to, msg, snap });
                }
            }
            Err(()) => {
                let site = if from.is_central() {
                    to.local_index()
                } else {
                    from.local_index()
                };
                self.metrics
                    .on_availability(now, |a| a.deferred_messages += 1);
                self.deferred_links[site].push_back((from, to, msg, snap));
            }
        }
    }

    fn on_msg(&mut self, now: SimTime, to: NodeId, msg: Msg, snap: Option<CentralSnapshot>) {
        // Messages reaching a crashed node wait, in arrival order, for its
        // recovery.
        let destination_up = if to.is_central() {
            self.central_up
        } else {
            self.site_up[to.local_index()]
        };
        if !destination_up {
            self.metrics
                .on_availability(now, |a| a.deferred_messages += 1);
            if to.is_central() {
                self.deferred_central.push_back((to, msg, snap));
            } else {
                self.deferred_site[to.local_index()].push_back((msg, snap));
            }
            return;
        }
        if let (false, Some(s)) = (to.is_central(), snap) {
            self.sites[to.local_index()].latest_central = s;
        }
        match msg {
            Msg::ShipTxn { txn } => {
                debug_assert!(to.is_central());
                let Some(t) = self.txns.get_mut(txn) else {
                    return;
                };
                t.phase = Phase::SetupIo;
                t.in_central_count = true;
                self.centrals[to.shard_index()].n_txns += 1;
                self.schedule_io(now, txn, self.cfg.params.setup_io);
            }
            Msg::AsyncUpdate { from, writes } => {
                debug_assert!(to.is_central());
                self.submit_cpu(
                    now,
                    Locale::Central(to.shard_index()),
                    JobKind::ApplyAsync { from, writes },
                    self.cfg.params.async_update_instr,
                );
            }
            Msg::AsyncAck { locks } => {
                let site = to.local_index();
                for &l in &locks {
                    // A crash clears the volatile lock table (and its
                    // coherence counts); ignore acknowledgements of
                    // pre-crash updates.
                    if self.sites[site].locks.coherence(l) > 0 {
                        self.sites[site].locks.decr_coherence(l);
                    }
                }
                self.pool_lockids.put(locks);
            }
            Msg::AuthRequest { txn, locks } => {
                let site = to.local_index();
                self.submit_cpu(
                    now,
                    Locale::Site(site),
                    JobKind::AuthProcess { txn, site, locks },
                    self.cfg.params.auth_instr,
                );
            }
            Msg::AuthReply { txn, positive } => {
                debug_assert!(to.is_central());
                self.shard_auth_reply(now, to.shard_index(), txn, positive);
            }
            Msg::AuthRelease { txn } => {
                let site = to.local_index();
                let grants = self.sites[site].locks.release_all(OwnerId(txn));
                self.resume_grants(now, &grants, Locale::Site(site));
            }
            Msg::CommitMsg { txn, writes } => {
                let site = to.local_index();
                self.submit_cpu(
                    now,
                    Locale::Site(site),
                    JobKind::ApplyCommit { txn, site, writes },
                    self.cfg.params.async_update_instr,
                );
            }
            Msg::RemoteCallReq { txn } => {
                debug_assert!(to.is_central());
                {
                    let Some(t) = self.txns.get_mut(txn) else {
                        return;
                    };
                    if t.call_idx == 0 && !t.is_rerun() {
                        t.in_central_count = true;
                        self.centrals[to.shard_index()].n_txns += 1;
                    }
                }
                self.start_call_cpu(now, txn);
            }
            Msg::RemoteCallResp { txn } => {
                debug_assert!(!to.is_central());
                if self.txns.contains(txn) {
                    self.origin_issue_call(now, txn);
                }
            }
            Msg::Reply { txn } => {
                let site = to.local_index();
                // The origin's transaction record is gone if a crash killed
                // it while the reply was in flight.
                let Some(mut t) = self.txns.remove(txn) else {
                    return;
                };
                self.pool_sites.put(std::mem::take(&mut t.auth_sites));
                let rt = now - t.arrival;
                let (class, attempts) = (t.class(), t.attempts);
                let breakdown = t.phase_breakdown(rt.as_secs());
                self.trace(now, || TraceEvent::Completion {
                    txn,
                    class,
                    route: Route::Central,
                    response: rt,
                    attempts,
                    breakdown,
                });
                match class {
                    TxnClass::A => {
                        self.metrics
                            .on_shipped_a_done(now, site, rt, attempts, &breakdown);
                        self.router.on_shipped_completion(site, rt);
                    }
                    TxnClass::B => {
                        self.metrics
                            .on_class_b_done(now, site, rt, attempts, &breakdown);
                    }
                }
                if t.during_outage {
                    self.metrics.on_outage_response(now, rt);
                }
                self.placement_release_txn(now, &t.spec.locks);
            }
            Msg::ShardLockReq {
                txn,
                lock,
                mode,
                home,
            } => {
                debug_assert!(to.is_central());
                self.submit_cpu(
                    now,
                    Locale::Central(to.shard_index()),
                    JobKind::ShardLock {
                        txn,
                        lock,
                        mode,
                        home,
                    },
                    self.cfg.params.shard_op_instr,
                );
            }
            Msg::ShardLockResp { txn, lock, granted } => {
                debug_assert!(to.is_central());
                self.on_shard_lock_resp(now, to.shard_index(), txn, lock, granted);
            }
            Msg::ShardAuthReq { txn, home, locks } => {
                debug_assert!(to.is_central());
                self.submit_cpu(
                    now,
                    Locale::Central(to.shard_index()),
                    JobKind::ShardAuthFanout { txn, home, locks },
                    self.cfg.params.shard_op_instr,
                );
            }
            Msg::ShardAuthReply { txn, positive } => {
                debug_assert!(to.is_central());
                self.on_auth_reply(now, txn, positive);
            }
            Msg::ShardCommit { txn, locks, writes } => {
                debug_assert!(to.is_central());
                self.submit_cpu(
                    now,
                    Locale::Central(to.shard_index()),
                    JobKind::ShardCommitApply { txn, locks, writes },
                    self.cfg.params.shard_op_instr,
                );
            }
            Msg::ShardAuthAbort { txn } => {
                debug_assert!(to.is_central());
                let s = to.shard_index();
                if let Some(entry) = self.centrals[s].foreign_auth.remove(&txn) {
                    for i in 0..entry.sites.len() {
                        let site = entry.sites[i];
                        self.send(
                            now,
                            NodeId::shard(s as u32),
                            NodeId::local(site as u32),
                            Msg::AuthRelease { txn },
                        );
                    }
                    self.pool_sites.put(entry.sites);
                }
            }
            Msg::ShardRelease { txn } => {
                debug_assert!(to.is_central());
                let s = to.shard_index();
                let grants = self.centrals[s].locks.release_all(OwnerId(txn));
                self.resume_grants(now, &grants, Locale::Central(s));
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn on_fault(&mut self, now: SimTime, kind: FaultKind) {
        self.trace(now, || TraceEvent::Fault {
            what: kind.to_string(),
        });
        match kind {
            FaultKind::SiteDown { site } => {
                self.fault_began();
                self.site_up[site] = false;
                self.crash_site(now, site);
            }
            FaultKind::SiteUp { site } => {
                self.fault_ended();
                self.site_up[site] = true;
                self.recover_site(now, site);
            }
            FaultKind::CentralDown => {
                self.fault_began();
                self.central_up = false;
                self.crash_central(now);
            }
            FaultKind::CentralUp => {
                self.fault_ended();
                self.central_up = true;
                self.recover_central(now);
            }
            FaultKind::LinkDown { site } => {
                self.fault_began();
                self.net.set_link_up(site, false);
            }
            FaultKind::LinkUp { site } => {
                self.fault_ended();
                self.net.set_link_up(site, true);
                let queued = std::mem::take(&mut self.deferred_links[site]);
                for (from, to, msg, snap) in queued {
                    self.deliver(now, from, to, msg, snap);
                }
            }
            FaultKind::LinkDegraded { site, factor } => {
                self.fault_began();
                self.net.set_slow_factor(site, factor);
            }
            FaultKind::LinkRestored { site } => {
                self.fault_ended();
                self.net.set_slow_factor(site, 1.0);
            }
        }
    }

    /// A fault window opened: everything currently in flight overlaps it.
    fn fault_began(&mut self) {
        self.active_faults += 1;
        for t in self.txns.values_mut() {
            t.during_outage = true;
        }
    }

    fn fault_ended(&mut self) {
        self.active_faults = self.active_faults.saturating_sub(1);
    }

    /// A local site's DBMS crashes: the CPU loses its work, the volatile
    /// lock table (and its coherence counts) is cleared, and every
    /// transaction anchored at the site is killed. Durable state — the
    /// master store and the queued asynchronous updates — survives for
    /// recovery.
    fn crash_site(&mut self, now: SimTime, s: usize) {
        // Abort migrations touching the site *before* the kills below
        // drain its partitions' live counters — a half-copied partition
        // must never switch over off the back of a crash.
        self.abort_migrations(now, |m| m.from == s || m.to == s);
        // Dispose of the work on the CPU and cancel the completions that
        // will never happen.
        let evicted = self.sites[s].cpu.drain(now);
        let mut failed_auths = Vec::new();
        for job in evicted {
            if let Some(key) = self.jobs.take_key(job.id) {
                self.queue.cancel(key);
            }
            match self.jobs.remove(job.id).expect("drained unknown job") {
                // Its transaction is killed below.
                JobKind::TxnPhase(_) => {}
                // The central complex detects the lost request as a
                // negative acknowledgement (synthesized after the kills).
                JobKind::AuthProcess { txn, locks, .. } => {
                    failed_auths.push(txn);
                    self.pool_locks.put(locks);
                }
                // The commit is already durable centrally; treat the write
                // application as redo-logged.
                JobKind::ApplyCommit { writes, .. } => {
                    for &(l, stamp) in &writes {
                        self.sites[s].store.insert(l, stamp);
                    }
                    self.placement_commit_applied(now, &writes);
                    self.pool_writes.put(writes);
                }
                JobKind::ApplyAsync { .. }
                | JobKind::ShardLock { .. }
                | JobKind::ShardAuthFanout { .. }
                | JobKind::ShardCommitApply { .. } => {
                    unreachable!("central-side job at a local site")
                }
            }
        }
        // Kill every transaction anchored at the site: locals, remote-call
        // transactions from it, and shipped ones still in origin
        // processing. (Sorted: map iteration order must not leak into
        // results.)
        let mut victims: Vec<u64> = self
            .txns
            .values()
            .filter(|t| {
                t.spec.origin == s
                    && (t.route == Route::Local || t.remote_calls || t.phase == Phase::OriginMsgCpu)
            })
            .map(|t| t.id)
            .collect();
        victims.sort_unstable();
        for id in victims {
            self.crash_kill(now, id, false);
        }
        // The volatile lock table is lost. Its operation counters are
        // absorbed into the profiler first so the profile survives the
        // table replacement.
        let lost = std::mem::replace(&mut self.sites[s].locks, LockTable::new());
        self.absorb_lock_stats(lost.stats());
        self.sites[s].locks.set_profiling(self.profiler.enabled());
        self.sites[s].n_txns = 0;
        let h = self.shard_map.home_of(s) as usize;
        for txn in failed_auths {
            if self.txns.contains(txn) || self.centrals[h].foreign_auth.contains_key(&txn) {
                self.shard_auth_reply(now, h, txn, false);
            }
        }
    }

    /// A recovered site first replays its durable asynchronous-update
    /// queue (resynchronizing the central replica), then processes the
    /// traffic that arrived while it was down, in arrival order.
    fn recover_site(&mut self, now: SimTime, s: usize) {
        self.flush_async(now, s);
        let queued = std::mem::take(&mut self.deferred_site[s]);
        for (msg, snap) in queued {
            self.on_msg(now, NodeId::local(s as u32), msg, snap);
        }
    }

    /// The central complex crashes: resident transactions are killed (the
    /// seizures they hold at master sites are released), the central lock
    /// table is cleared, and interrupted asynchronous-update applications
    /// are queued durably for replay. Shipped transactions still on the
    /// wire or at their origin survive — their messages wait for recovery.
    fn crash_central(&mut self, now: SimTime) {
        // The controller coordinates every copy and switchover through
        // the central complex: all in-flight migrations die with it.
        self.abort_migrations(now, |_| true);
        for k in 0..self.n_shards {
            let evicted = self.centrals[k].cpu.drain(now);
            for job in evicted {
                if let Some(key) = self.jobs.take_key(job.id) {
                    self.queue.cancel(key);
                }
                match self.jobs.remove(job.id).expect("drained unknown job") {
                    JobKind::TxnPhase(_) => {}
                    // Update applications are redo-logged durably; replayed
                    // on recovery.
                    kind @ (JobKind::ApplyAsync { .. } | JobKind::ShardCommitApply { .. }) => {
                        self.central_replay.push((k, kind));
                    }
                    // In-flight cross-shard coordination dies with the
                    // complex; the requesters are killed below.
                    JobKind::ShardLock { .. } => {}
                    JobKind::ShardAuthFanout { locks, .. } => self.pool_locks.put(locks),
                    JobKind::AuthProcess { .. } | JobKind::ApplyCommit { .. } => {
                        unreachable!("site-side job at the central complex")
                    }
                }
            }
        }
        let mut victims: Vec<u64> = self
            .txns
            .values()
            .filter(|t| t.in_central_count)
            .map(|t| t.id)
            .collect();
        victims.sort_unstable();
        for id in victims {
            self.crash_kill(now, id, true);
        }
        for k in 0..self.n_shards {
            let lost = std::mem::replace(&mut self.centrals[k].locks, LockTable::new());
            self.absorb_lock_stats(lost.stats());
            self.centrals[k]
                .locks
                .set_profiling(self.profiler.enabled());
            self.centrals[k].foreign_auth.clear();
            debug_assert_eq!(self.centrals[k].n_txns, 0, "central crash left residents");
        }
    }

    /// Recovery: interrupted update applications restart first (their
    /// messages were consumed before the crash), then deferred traffic in
    /// arrival order — preserving per-site FIFO application.
    fn recover_central(&mut self, now: SimTime) {
        let replay = std::mem::take(&mut self.central_replay);
        for (k, kind) in replay {
            let instr = match &kind {
                JobKind::ApplyAsync { .. } => self.cfg.params.async_update_instr,
                JobKind::ShardCommitApply { .. } => self.cfg.params.shard_op_instr,
                _ => unreachable!("non-replayable job in the replay log"),
            };
            self.submit_cpu(now, Locale::Central(k), kind, instr);
        }
        let queued = std::mem::take(&mut self.deferred_central);
        for (to, msg, snap) in queued {
            self.on_msg(now, to, msg, snap);
        }
    }

    /// Removes a crash victim, releasing whatever it holds in the
    /// surviving lock tables (crashed tables are cleared wholesale).
    fn crash_kill(&mut self, now: SimTime, id: u64, central_cause: bool) {
        let mut txn = self.txns.remove(id).expect("crash victim");
        let owner = OwnerId(id);
        // Locks seized at master sites during authentication.
        let auth_sites = std::mem::take(&mut txn.auth_sites);
        for &a in &auth_sites {
            if self.site_up[a] {
                let grants = self.sites[a].locks.release_all(owner);
                self.resume_grants(now, &grants, Locale::Site(a));
            }
        }
        self.pool_sites.put(auth_sites);
        // Locks held or awaited at the central complex (if it survives),
        // including cross-shard grants at foreign shards.
        if self.central_up && txn.route == Route::Central {
            let k = self.shard_map.home_of(txn.spec.origin) as usize;
            let grants = self.centrals[k].locks.release_all(owner);
            self.resume_grants(now, &grants, Locale::Central(k));
            for j in std::mem::take(&mut txn.remote_shards) {
                let grants = self.centrals[j as usize].locks.release_all(owner);
                self.resume_grants(now, &grants, Locale::Central(j as usize));
            }
        }
        if txn.in_central_count {
            self.centrals[self.shard_map.home_of(txn.spec.origin) as usize].n_txns -= 1;
        }
        // Drop any delegation records still tracking this transaction.
        if self.n_shards > 1 {
            for k in 0..self.n_shards {
                if let Some(entry) = self.centrals[k].foreign_auth.remove(&id) {
                    self.pool_sites.put(entry.sites);
                }
            }
        }
        let route = txn.route;
        self.metrics.on_availability(now, |a| {
            if central_cause {
                a.crash_aborts_central += 1;
            } else {
                a.crash_aborts_site += 1;
            }
        });
        self.trace(now, || TraceEvent::CrashAbort { txn: id, route });
        self.placement_release_txn(now, &txn.spec.locks);
    }

    // ------------------------------------------------------------------
    // Speculative-executor plumbing (see `crate::speculative`)
    // ------------------------------------------------------------------

    /// Central speculative worker: log a commit-path read of a
    /// transaction's abort mark, so the barrier can detect a same-window
    /// seizure at a master site that the optimistic execution missed.
    /// No-op outside the central worker.
    fn shard_note_abort_read(&mut self, now: SimTime, id: u64, marked: bool) {
        if let Some(shard) = self.shard.as_mut() {
            if shard.central {
                shard.abort_reads.push((now, id, marked));
            }
        }
    }

    /// Whether this run is eligible for the speculative window executor:
    /// fault-free, untraced, unprofiled, unsampled, unvalidated, on the
    /// indexed queue, with delayed central snapshots and a positive
    /// *uniform* communication delay (the conservative window bound — a
    /// heterogeneous delay matrix would let a fast link deliver inside
    /// another partition's window, so non-uniform topologies fall back
    /// to the serial path). Ineligible runs take the serial path and
    /// are bit-identical by construction.
    pub(crate) fn speculative_eligible(&self) -> bool {
        self.n_shards == 1
            && !self.cfg.scale_metrics
            && self.cfg.fault_schedule.events().is_empty()
            && self.trace.is_none()
            && !self.profiler.enabled()
            && self.samples.is_none()
            && !self.validate_locks
            && !self.cfg.instantaneous_state
            && self.cfg.uniform_link_delays()
            && self.cfg.min_link_delay() > 0.0
            && self.placement.is_none()
            && matches!(self.queue, Queue::Indexed(_))
            && self.queue.is_empty()
    }

    /// Converts this freshly built system into a speculative worker for
    /// one partition: metrics are journaled for barrier replay, and every
    /// schedule call is tracked so the barrier can stamp new events with
    /// their global serial order.
    pub(crate) fn shard_init(&mut self, central: bool) {
        assert!(
            self.queue.is_empty() && self.shard.is_none(),
            "shard_init on a started or already-sharded system"
        );
        self.metrics = MetricsSink::Journal(Vec::new());
        self.queue.indexed().set_tracking(true);
        self.shard = Some(Box::new(ShardCtx {
            central,
            ..ShardCtx::default()
        }));
    }

    /// Schedules this worker's partition-local initial events with their
    /// global serial stamps: the serial loop schedules site `i`'s first
    /// arrival with sequence `i` and `EndWarmup` with sequence `n`.
    /// `EndWarmup` is scheduled in *every* worker (each needs its own
    /// busy-at-warmup snapshot); the barrier merge counts it once.
    pub(crate) fn shard_schedule_initial(&mut self, site: Option<usize>) {
        let n = self.cfg.params.n_sites;
        if let Some(site) = site {
            let first = {
                let rng = &mut self.site_rngs[site];
                self.arrivals[site].next_after(rng, SimTime::ZERO)
            };
            let q = self.queue.indexed();
            let key = q.schedule_keyed(first, Ev::Arrival { site });
            q.set_priority(&key, site as u64);
        }
        let q = self.queue.indexed();
        let key = q.schedule_keyed(SimTime::from_secs(self.cfg.warmup), Ev::EndWarmup);
        q.set_priority(&key, n as u64);
        // Initial scheduling belongs to no window's log.
        let _ = q.take_tracked();
    }

    /// Queues one pre-assigned arrival admission (driver's shadow).
    pub(crate) fn shard_push_feed(&mut self, feed: ArrivalFeed) {
        self.shard
            .as_mut()
            .expect("shard worker")
            .feed
            .push_back(feed);
    }

    /// Runs this worker's events strictly before `until` (clamped to the
    /// horizon), recording the pop log. Injected abort marks (conflict
    /// re-execution) are applied to the transaction table as the clock
    /// passes them; any remainder is applied when the window closes.
    pub(crate) fn shard_run_window(&mut self, until: SimTime) {
        let until = if until < self.end { until } else { self.end };
        while let Some(t) = self.queue.peek_time() {
            if t >= until {
                break;
            }
            loop {
                let shard = self.shard.as_mut().expect("shard worker");
                // Strict `<`: an exact time tie between a site's seizure
                // and a central event forces the whole-run serial
                // fallback upstream, so the order here never matters.
                match shard.inject.front() {
                    Some(&(at, victim)) if at < t => {
                        shard.inject.pop_front();
                        if let Some(tx) = self.txns.get_mut(victim) {
                            tx.marked_abort = true;
                        }
                    }
                    _ => break,
                }
            }
            let (now, pri, seq, ev) = self.queue.indexed().pop_entry().expect("peeked event");
            self.events_processed += 1;
            let dup = matches!(ev, Ev::EndWarmup);
            self.handle(now, ev);
            let sched_end = self.queue.indexed().tracked_len() as u32;
            let ops_end = self.metrics.ops_len() as u32;
            let shard = self.shard.as_mut().expect("shard worker");
            shard.pops.push(PopRec {
                at: now,
                pri,
                seq,
                dup,
                sched_end,
                send_end: shard.staged_sends.len() as u32,
                ops_end,
            });
        }
        loop {
            let shard = self.shard.as_mut().expect("shard worker");
            let Some((_, victim)) = shard.inject.pop_front() else {
                break;
            };
            if let Some(tx) = self.txns.get_mut(victim) {
                tx.marked_abort = true;
            }
        }
    }

    /// Drains the window's logs at the barrier.
    pub(crate) fn shard_take_window(&mut self) -> WindowLog {
        let scheds = self.queue.indexed().take_tracked();
        let ops = self.metrics.take_ops();
        let shard = self.shard.as_mut().expect("shard worker");
        WindowLog {
            pops: std::mem::take(&mut shard.pops),
            scheds,
            sends: std::mem::take(&mut shard.staged_sends),
            aborts: std::mem::take(&mut shard.staged_aborts),
            reads: std::mem::take(&mut shard.abort_reads),
            ops,
        }
    }

    /// Stamps a still-pending event with its global serial order (barrier
    /// replay); `false` if the event already fired within its window.
    pub(crate) fn shard_set_priority(&mut self, key: &EventKey, pri: u64) -> bool {
        self.queue.indexed().set_priority(key, pri)
    }

    /// Delivers a staged cross-partition message into this worker's
    /// queue with its serial stamp, inserting any migrating transaction
    /// record first.
    pub(crate) fn shard_deliver(&mut self, send: StagedSend, stamp: u64) {
        if let Some(txn) = send.txn {
            self.txns.insert(txn.id, txn);
        }
        let q = self.queue.indexed();
        let key = q.schedule_keyed(
            send.deliver_at,
            Ev::MsgArrive {
                to: send.to,
                msg: send.msg,
                snap: send.snap,
            },
        );
        q.set_priority(&key, stamp);
    }

    /// Discards schedule-tracking entries produced by barrier deliveries
    /// so the next window's log starts clean.
    pub(crate) fn shard_discard_tracking(&mut self) {
        let _ = self.queue.indexed().take_tracked();
    }

    /// Applies a site-staged abort mark at the barrier (no-conflict
    /// case). The record may already have migrated home with its commit
    /// `Reply`, in which case the mark is inert — exactly as it is in
    /// the serial run, where the flag is set on a committed record that
    /// nobody reads again.
    pub(crate) fn shard_apply_abort(&mut self, victim: u64) {
        if let Some(t) = self.txns.get_mut(victim) {
            t.marked_abort = true;
        }
    }

    /// Queues time-ordered abort marks for injection during a conflict
    /// re-execution of the central window.
    pub(crate) fn shard_inject(&mut self, aborts: &[(SimTime, u64)]) {
        let shard = self.shard.as_mut().expect("shard worker");
        debug_assert!(shard.inject.is_empty(), "injection into a dirty window");
        shard.inject.extend(aborts.iter().copied());
    }

    /// Post-warmup utilization of site `i`'s CPU — valid only on the
    /// worker that owns partition `i`.
    pub(crate) fn shard_site_utilization(&self, i: usize) -> f64 {
        self.sites[i].cpu.utilization(
            self.end,
            SimTime::from_secs(self.cfg.warmup),
            self.sites[i].busy_at_warmup,
        )
    }

    /// Post-warmup utilization of the central CPU complex — valid only
    /// on the central worker.
    pub(crate) fn shard_central_utilization(&self) -> f64 {
        self.centrals[0].cpu.utilization(
            self.end,
            SimTime::from_secs(self.cfg.warmup),
            self.centrals[0].busy_at_warmup,
        )
    }

    /// This worker's network counters (its partition's sends).
    pub(crate) fn shard_net_counters(&self) -> hls_net::NetCounters {
        self.net.counters()
    }

    /// This worker's per-kind message counts (its partition's sends).
    pub(crate) fn shard_msg_counts(&self) -> &MsgCounts {
        &self.msg_counts
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    /// Merges a lock table's operation counters into the profiler under
    /// the `lock.*` keys (no-op when profiling is off).
    fn absorb_lock_stats(&mut self, stats: &LockStats) {
        self.profiler.absorb("lock.request", &stats.request);
        self.profiler.absorb("lock.release_all", &stats.release_all);
        self.profiler.absorb("lock.release_one", &stats.release_one);
        self.profiler.absorb("lock.cancel_wait", &stats.cancel_wait);
        self.profiler
            .absorb("lock.force_acquire", &stats.force_acquire);
    }

    fn finalize(&mut self) -> RunMetrics {
        let window = self.end - SimTime::from_secs(self.cfg.warmup);
        let rho_local = self
            .sites
            .iter()
            .map(|s| {
                s.cpu.utilization(
                    self.end,
                    SimTime::from_secs(self.cfg.warmup),
                    s.busy_at_warmup,
                )
            })
            .sum::<f64>()
            / self.sites.len() as f64;
        let rho_central = self
            .centrals
            .iter()
            .map(|c| {
                c.cpu.utilization(
                    self.end,
                    SimTime::from_secs(self.cfg.warmup),
                    c.busy_at_warmup,
                )
            })
            .sum::<f64>()
            / self.centrals.len() as f64;
        let _ = window;
        let by_kind = self.msg_counts.sorted();
        let downtime = self
            .cfg
            .fault_schedule
            .downtime_within(self.cfg.warmup, self.cfg.sim_time);
        let profile = if self.profiler.enabled() {
            let mut tables: Vec<LockStats> =
                self.sites.iter().map(|s| s.locks.stats().clone()).collect();
            tables.extend(self.centrals.iter().map(|c| c.locks.stats().clone()));
            for stats in &tables {
                self.absorb_lock_stats(stats);
            }
            Some(self.profiler.report())
        } else {
            None
        };
        let mut m = self.metrics.finalize(
            self.end,
            rho_local,
            rho_central,
            self.net.messages_sent(),
            downtime,
            profile,
        );
        m.messages_by_kind = by_kind;
        if self.cfg.scale_metrics {
            let state_bytes = self.state_bytes();
            let peak = self.peak_txns as u64;
            m.scale = Some(ScaleReport {
                n_sites: self.cfg.params.n_sites,
                n_shards: self.n_shards,
                peak_in_flight: peak,
                state_bytes,
                bytes_per_txn: state_bytes as f64 / peak.max(1) as f64,
                cross_shard_messages: self.net.messages_cross_shard(),
                cross_shard_denials: self.cross_denials,
                remote_lock_grants: self.remote_grant_count,
            });
        }
        if let Some(p) = self.placement.as_ref() {
            let total = p.class_a_admitted + p.class_b_admitted;
            let rate = |n: u64| {
                if total > 0 {
                    n as f64 / total as f64
                } else {
                    0.0
                }
            };
            m.placement = Some(PlacementReport {
                policy: match self.cfg.placement.policy {
                    PlacementPolicy::Static => "static",
                    PlacementPolicy::Threshold { .. } => "threshold",
                    PlacementPolicy::Epoch => "epoch",
                }
                .to_string(),
                epoch: p.map.epoch(),
                migrations_planned: p.migrations_planned,
                migrations_completed: p.migrations_completed,
                migrations_aborted: p.migrations_aborted,
                bytes_moved: p.bytes_moved,
                parked_admissions: p.parked_admissions,
                class_a_admitted: p.class_a_admitted,
                class_b_admitted: p.class_b_admitted,
                class_b_rate: rate(p.class_b_admitted),
                class_b_rate_static: rate(p.class_b_static),
            });
        }
        m
    }

    /// Estimated resident state footprint: transaction records, CPU job
    /// slots, and per-node replica stores, update buffers, and lock
    /// grants. Entry sizes are fixed estimates (a map entry's key, value,
    /// and bucket overhead), so the figure is comparable across backends
    /// and shard counts rather than allocator-exact.
    fn state_bytes(&self) -> u64 {
        const STORE_ENTRY: usize = 24;
        const GRANT_ENTRY: usize = 48;
        let mut total = self.txns.approx_bytes() + self.jobs.approx_bytes();
        for s in &self.sites {
            total += s.store.len() * STORE_ENTRY
                + s.async_buffer.capacity() * std::mem::size_of::<(LockId, u64)>()
                + s.locks.grants_count() * GRANT_ENTRY;
        }
        for c in &self.centrals {
            total += c.store.len() * STORE_ENTRY + c.locks.grants_count() * GRANT_ENTRY;
        }
        total as u64
    }
}

/// Convenience wrapper: build and run in one call.
///
/// # Errors
///
/// Returns a [`ConfigError`] naming the violated constraint for an
/// inconsistent configuration.
pub fn run_simulation(cfg: SystemConfig, router: RouterSpec) -> Result<RunMetrics, ConfigError> {
    Ok(HybridSystem::new(cfg, router)?.run())
}
