//! # hls-core — the hybrid DBMS simulator and load-sharing strategies
//!
//! Reproduction of Ciciani, Dias & Yu, *Load Sharing in Hybrid
//! Distributed-Centralized Database Systems* (ICDCS 1988).
//!
//! The hybrid architecture connects `N` geographically distributed database
//! sites to one central computing complex holding a replica of every
//! partition. Class A transactions (purely local data) may run either at
//! their local site or at the central complex; class B transactions
//! (non-local data) always run centrally. This crate provides:
//!
//! * [`HybridSystem`] — a deterministic discrete-event simulation of the
//!   full Section 2 concurrency/coherency protocol (local + central
//!   locking, asynchronous update propagation with coherence counts,
//!   invalidation, the authentication phase, deadlock handling),
//! * [`RouterSpec`] / [`Router`] — all the paper's load-sharing strategies:
//!   no sharing, optimal static, the measured-response and queue-length
//!   heuristics, the tuned utilization-threshold heuristic, and the four
//!   analytic dynamic schemes (minimize incoming / average response, from
//!   queue lengths / populations),
//! * [`SystemConfig`] — the paper's Section 4.1 configuration with every
//!   parameter adjustable,
//! * [`RunMetrics`] — response times, throughput, shipped fraction, abort
//!   and utilization measurements,
//! * the **experiment engine** ([`sweep_rates`], [`replicate`],
//!   [`replicate_ci`], [`parallel_map`]) — sweeps and seed replications
//!   fanned across a scoped-thread worker pool with deterministic per-run
//!   seed derivation ([`derive_seed`]), so results are bit-identical for
//!   any thread count, plus Student-t confidence summaries
//!   ([`MetricSummary`]) and CI-targeted auto-replication.
//!
//! # Examples
//!
//! Compare no sharing against the paper's best dynamic strategy:
//!
//! ```
//! use hls_analytic::UtilizationEstimator;
//! use hls_core::{run_simulation, RouterSpec, SystemConfig};
//!
//! let cfg = SystemConfig::paper_default()
//!     .with_total_rate(18.0)
//!     .with_horizon(80.0, 20.0);
//! let none = run_simulation(cfg.clone(), RouterSpec::NoSharing)?;
//! let best = run_simulation(
//!     cfg,
//!     RouterSpec::MinAverage { estimator: UtilizationEstimator::NumInSystem },
//! )?;
//! assert!(best.completions > 0 && none.completions > 0);
//! # Ok::<(), hls_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dense;
mod error;
mod experiment;
mod metrics;
mod msg;
mod router;
mod speculative;
mod system;
mod trace;
mod txn;

pub use config::{ClassBMode, DeadlockVictim, SystemConfig};
pub use error::ConfigError;
pub use experiment::{
    default_jobs, derive_seed, mean_over, optimal_static_spec, parallel_map, replicate,
    replicate_ci, replicate_jobs, replicate_jobs_threads, resolve_jobs, splitmix64, strategy_tag,
    summarize, sweep_rates, sweep_rates_ci, sweep_rates_jobs, sweep_rates_static,
    sweep_rates_static_jobs, try_parallel_map, CiOptions, CiRun, CiSweepPoint, MetricSummary,
    SweepPoint, NO_RATE_INDEX,
};
pub use metrics::{
    AbortCounts, AvailabilityMetrics, MetricsCollector, ObsReport, PlacementReport, ResponseKey,
    RunMetrics, ScaleReport, PHASE_NAMES,
};
pub use msg::{CentralSnapshot, Msg};
pub use router::{
    FailureAwareRouter, FaultAwareDecision, IslandAwareRouter, RouteCtx, Router, RouterSpec,
};
pub use speculative::{run_simulation_threads, SpecReport};
pub use system::{run_simulation, ConvergenceReport, HybridSystem, SamplePoint};
pub use trace::{Trace, TraceEvent};
pub use txn::{Phase, PhaseBreakdown, Route, Txn};

// Re-export the pieces users need alongside the simulator.
pub use hls_analytic::{Observed, SystemParams, UtilizationEstimator};
pub use hls_faults::{FaultEvent, FaultKind, FaultProfile, FaultSchedule};
pub use hls_net::{DelayMatrix, IslandSpec};
pub use hls_obs::{
    HistogramSummary, JsonlSink, LogHistogram, MemorySink, NullSink, ObsConfig, ProfileEntry,
    ProfileReport, Profiler, TraceSink, TRACE_SCHEMA, TRACE_SCHEMA_VERSION,
};
pub use hls_placement::{
    Migration, PartitionGeometry, PlacementConfig, PlacementMap, PlacementPolicy,
};
pub use hls_shard::{ShardMap, ShardSpec};
pub use hls_workload::{
    DriftModel, DriftSpec, RateProfile, TxnClass, WorkloadSpec, ZipfDistribution,
};
