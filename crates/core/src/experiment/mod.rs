//! The experiment engine: parallel rate sweeps, seed replication, and
//! confidence-interval-driven output analysis.
//!
//! Every run in a sweep × strategy × replication grid is an independent
//! simulation, so the engine fans them out across a scoped-thread worker
//! pool ([`parallel_map`]) with **deterministic per-run seeds** derived
//! from the grid coordinates ([`derive_seed`]). Results are bit-identical
//! for any `jobs` value (thread count) and any completion order;
//! `jobs = 0` means "all cores".
//!
//! On top of the runner sits a statistics layer ([`MetricSummary`],
//! [`replicate_ci`], [`sweep_rates_ci`]) reporting mean, variance, and
//! Student-t 95% confidence half-widths across replications, including an
//! auto-replicate mode that adds replications until the relative
//! half-width of the mean response falls below a target.

mod parallel;
mod seed;
mod stats;

pub use parallel::{default_jobs, parallel_map, resolve_jobs, try_parallel_map};
pub use seed::{derive_seed, splitmix64, strategy_tag, NO_RATE_INDEX};
pub use stats::MetricSummary;

use hls_analytic::optimal_static_ship;

use crate::config::SystemConfig;
use crate::error::ConfigError;
use crate::metrics::RunMetrics;
use crate::router::RouterSpec;
use crate::system::run_simulation;

/// One point of a throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Total offered arrival rate (transactions/second, summed over sites).
    pub total_rate: f64,
    /// Measured metrics at that rate.
    pub metrics: RunMetrics,
}

/// The static policy the paper compares against: the shipping probability
/// chosen by the Section 3.1 analytic model for this configuration's rate.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn optimal_static_spec(cfg: &SystemConfig) -> RouterSpec {
    cfg.validate().expect("invalid configuration");
    let opt = optimal_static_ship(&cfg.params, cfg.mean_site_rate(), 50);
    RouterSpec::Static { p_ship: opt.p_ship }
}

/// Runs one grid cell: the simulation at `rate_index` / `replication` with
/// its deterministically derived seed.
fn run_cell(
    base: &SystemConfig,
    spec: RouterSpec,
    rate: Option<f64>,
    rate_index: u64,
    replication: u64,
) -> Result<RunMetrics, ConfigError> {
    let mut cfg = base.clone();
    if let Some(rate) = rate {
        cfg = cfg.with_total_rate(rate);
    }
    let seed = derive_seed(base.seed, rate_index, strategy_tag(&spec), replication);
    run_simulation(cfg.with_seed(seed), spec)
}

/// Runs `router` across `total_rates` on `jobs` worker threads (`0` = all
/// cores), returning one sweep point per rate in rate order. Results are
/// bit-identical for every `jobs` value.
///
/// For [`RouterSpec::Static`] policies pass the result of
/// [`optimal_static_spec`] per rate instead (the optimum depends on the
/// rate); use [`sweep_rates_static_jobs`] for that.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index rate
/// that fails.
pub fn sweep_rates_jobs(
    base: &SystemConfig,
    router: RouterSpec,
    total_rates: &[f64],
    jobs: usize,
) -> Result<Vec<SweepPoint>, ConfigError> {
    try_parallel_map(jobs, total_rates, |i, &rate| {
        Ok(SweepPoint {
            total_rate: rate,
            metrics: run_cell(base, router, Some(rate), i as u64, 0)?,
        })
    })
}

/// [`sweep_rates_jobs`] on all cores.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index rate
/// that fails.
pub fn sweep_rates(
    base: &SystemConfig,
    router: RouterSpec,
    total_rates: &[f64],
) -> Result<Vec<SweepPoint>, ConfigError> {
    sweep_rates_jobs(base, router, total_rates, 0)
}

/// Runs the *optimal static* policy across `total_rates` on `jobs` worker
/// threads, re-optimizing the shipping probability at each rate as the
/// paper does.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index rate
/// that fails.
pub fn sweep_rates_static_jobs(
    base: &SystemConfig,
    total_rates: &[f64],
    jobs: usize,
) -> Result<Vec<SweepPoint>, ConfigError> {
    try_parallel_map(jobs, total_rates, |i, &rate| {
        let cfg = base.clone().with_total_rate(rate);
        cfg.validate()?;
        let spec = optimal_static_spec(&cfg);
        Ok(SweepPoint {
            total_rate: rate,
            metrics: run_cell(base, spec, Some(rate), i as u64, 0)?,
        })
    })
}

/// [`sweep_rates_static_jobs`] on all cores.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index rate
/// that fails.
pub fn sweep_rates_static(
    base: &SystemConfig,
    total_rates: &[f64],
) -> Result<Vec<SweepPoint>, ConfigError> {
    sweep_rates_static_jobs(base, total_rates, 0)
}

/// Runs the same experiment under `n_seeds` replication seeds (derived
/// from the base seed via [`derive_seed`]) on `jobs` worker threads,
/// returning all results in replication order, for confidence estimation.
/// Results are bit-identical for every `jobs` value.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index
/// replication that fails.
pub fn replicate_jobs(
    base: &SystemConfig,
    router: RouterSpec,
    n_seeds: u64,
    jobs: usize,
) -> Result<Vec<RunMetrics>, ConfigError> {
    let reps: Vec<u64> = (0..n_seeds).collect();
    try_parallel_map(jobs, &reps, |_, &k| {
        run_cell(base, router, None, NO_RATE_INDEX, k)
    })
}

/// [`replicate_jobs`] with each replication itself executed by the
/// speculative window executor on `sim_threads` worker threads (see
/// [`run_simulation_threads`](crate::run_simulation_threads)).
///
/// The two axes compose: `jobs` fans independent replications across
/// cores, `sim_threads` parallelizes inside each run. Results are
/// bit-identical to [`replicate_jobs`] for every `(jobs, sim_threads)`
/// pair, so the split is purely a throughput choice — many short runs
/// want `jobs`, few long runs want `sim_threads`.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index
/// replication that fails.
pub fn replicate_jobs_threads(
    base: &SystemConfig,
    router: RouterSpec,
    n_seeds: u64,
    jobs: usize,
    sim_threads: usize,
) -> Result<Vec<RunMetrics>, ConfigError> {
    let reps: Vec<u64> = (0..n_seeds).collect();
    try_parallel_map(jobs, &reps, |_, &k| {
        let seed = derive_seed(base.seed, NO_RATE_INDEX, strategy_tag(&router), k);
        crate::speculative::run_simulation_threads(
            base.clone().with_seed(seed),
            router,
            sim_threads,
        )
    })
}

/// [`replicate_jobs`] on all cores.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index
/// replication that fails.
pub fn replicate(
    base: &SystemConfig,
    router: RouterSpec,
    n_seeds: u64,
) -> Result<Vec<RunMetrics>, ConfigError> {
    replicate_jobs(base, router, n_seeds, 0)
}

/// Mean of a metric across replications.
#[must_use]
pub fn mean_over(runs: &[RunMetrics], f: impl Fn(&RunMetrics) -> f64) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(f).sum::<f64>() / runs.len() as f64
}

/// Summary of a metric across replications (mean, variance, 95% CI).
#[must_use]
pub fn summarize(runs: &[RunMetrics], f: impl Fn(&RunMetrics) -> f64) -> MetricSummary {
    MetricSummary::from_samples(runs.iter().map(f))
}

/// Options for confidence-targeted replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiOptions {
    /// Worker threads; `0` = all cores.
    pub jobs: usize,
    /// Stop once the 95% CI half-width of the mean response is at or
    /// below this fraction of the mean (e.g. `0.05` = ±5%).
    pub rel_target: f64,
    /// Replications to run before the first convergence check (≥ 2).
    pub min_replications: u64,
    /// Hard cap on replications (the target may stay unmet).
    pub max_replications: u64,
    /// Replications added per round while the target is unmet. `0` means
    /// "one per worker thread", keeping every core busy each round.
    pub batch: u64,
}

impl Default for CiOptions {
    fn default() -> Self {
        CiOptions {
            jobs: 0,
            rel_target: 0.05,
            min_replications: 3,
            max_replications: 64,
            batch: 0,
        }
    }
}

/// Result of [`replicate_ci`]: the replications that were run plus the
/// across-replication summary of the mean response.
#[derive(Debug, Clone, PartialEq)]
pub struct CiRun {
    /// All replication results, in replication order.
    pub runs: Vec<RunMetrics>,
    /// Across-replication summary of `mean_response`.
    pub mean_response: MetricSummary,
    /// Whether `rel_target` was met within `max_replications`.
    pub target_met: bool,
}

/// Replicates until the 95% CI half-width of the mean response falls at
/// or below `opts.rel_target` of the mean, or `opts.max_replications` is
/// reached ("auto-replicate" mode).
///
/// Replication `k` always uses the same derived seed no matter how many
/// rounds it took to get there, so the result depends only on the number
/// of replications ultimately run — not on `jobs`, batch sizing, or
/// completion order.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index
/// replication that fails.
pub fn replicate_ci(
    base: &SystemConfig,
    router: RouterSpec,
    opts: &CiOptions,
) -> Result<CiRun, ConfigError> {
    let min = opts.min_replications.clamp(2, opts.max_replications.max(2));
    let batch = if opts.batch == 0 {
        resolve_jobs(opts.jobs) as u64
    } else {
        opts.batch
    };
    let mut runs = replicate_jobs(base, router, min, opts.jobs)?;
    loop {
        let summary = summarize(&runs, |m| m.mean_response);
        if summary.meets_relative_target(opts.rel_target) {
            return Ok(CiRun {
                runs,
                mean_response: summary,
                target_met: true,
            });
        }
        let have = runs.len() as u64;
        if have >= opts.max_replications {
            return Ok(CiRun {
                runs,
                mean_response: summary,
                target_met: false,
            });
        }
        let next = (have + batch).min(opts.max_replications);
        let reps: Vec<u64> = (have..next).collect();
        runs.extend(try_parallel_map(opts.jobs, &reps, |_, &k| {
            run_cell(base, router, None, NO_RATE_INDEX, k)
        })?);
    }
}

/// One point of a confidence-reported sweep: every metric of interest
/// summarized across replications.
#[derive(Debug, Clone, PartialEq)]
pub struct CiSweepPoint {
    /// Total offered arrival rate.
    pub total_rate: f64,
    /// All replication results at this rate, in replication order.
    pub runs: Vec<RunMetrics>,
    /// Mean response time across replications.
    pub mean_response: MetricSummary,
    /// Throughput across replications.
    pub throughput: MetricSummary,
    /// Shipped fraction across replications.
    pub shipped_fraction: MetricSummary,
}

/// Sweeps `router` across `total_rates` with `replications` seeds per
/// rate, all (rate × replication) cells fanned out over the worker pool
/// together, and summarizes each rate across its replications.
///
/// # Errors
///
/// Returns the configuration validation error of the lowest-index cell
/// that fails.
pub fn sweep_rates_ci(
    base: &SystemConfig,
    router: RouterSpec,
    total_rates: &[f64],
    replications: u64,
    jobs: usize,
) -> Result<Vec<CiSweepPoint>, ConfigError> {
    let replications = replications.max(1);
    let cells: Vec<(u64, u64, f64)> = total_rates
        .iter()
        .enumerate()
        .flat_map(|(i, &rate)| (0..replications).map(move |k| (i as u64, k, rate)))
        .collect();
    let metrics = try_parallel_map(jobs, &cells, |_, &(rate_index, k, rate)| {
        run_cell(base, router, Some(rate), rate_index, k)
    })?;
    Ok(total_rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let runs: Vec<RunMetrics> = cells
                .iter()
                .zip(&metrics)
                .filter(|(&(ri, _, _), _)| ri == i as u64)
                .map(|(_, m)| m.clone())
                .collect();
            CiSweepPoint {
                total_rate: rate,
                mean_response: summarize(&runs, |m| m.mean_response),
                throughput: summarize(&runs, |m| m.throughput),
                shipped_fraction: summarize(&runs, |m| m.shipped_fraction),
                runs,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SystemConfig {
        SystemConfig::paper_default()
            .with_total_rate(8.0)
            .with_horizon(60.0, 10.0)
    }

    #[test]
    fn optimal_static_depends_on_rate() {
        let low = optimal_static_spec(&SystemConfig::paper_default().with_total_rate(1.0));
        let high = optimal_static_spec(&SystemConfig::paper_default().with_total_rate(20.0));
        let RouterSpec::Static { p_ship: p_low } = low else {
            panic!("expected static spec")
        };
        let RouterSpec::Static { p_ship: p_high } = high else {
            panic!("expected static spec")
        };
        assert!(p_low < p_high, "{p_low} vs {p_high}");
    }

    #[test]
    fn sweep_produces_one_point_per_rate() {
        let pts = sweep_rates(&quick_cfg(), RouterSpec::QueueLength, &[5.0, 10.0]).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].total_rate, 5.0);
        assert!(pts[0].metrics.completions > 0);
        assert!(pts[1].metrics.throughput > pts[0].metrics.throughput);
    }

    #[test]
    fn static_sweep_runs() {
        let pts = sweep_rates_static(&quick_cfg(), &[6.0]).unwrap();
        assert_eq!(pts.len(), 1);
        assert!(pts[0].metrics.completions > 0);
    }

    #[test]
    fn replications_differ_but_agree_roughly() {
        let runs = replicate(&quick_cfg(), RouterSpec::NoSharing, 3).unwrap();
        assert_eq!(runs.len(), 3);
        let mean = mean_over(&runs, |m| m.mean_response);
        for r in &runs {
            assert!((r.mean_response - mean).abs() / mean < 0.5);
        }
        // Different seeds give different samples.
        assert!(runs[0].mean_response != runs[1].mean_response);
    }

    #[test]
    fn mean_over_empty_is_zero() {
        assert_eq!(mean_over(&[], |m| m.mean_response), 0.0);
    }

    #[test]
    fn replicate_ci_meets_loose_target() {
        let ci = replicate_ci(
            &quick_cfg(),
            RouterSpec::NoSharing,
            &CiOptions {
                jobs: 2,
                rel_target: 0.5, // loose: a light-load run converges fast
                min_replications: 3,
                max_replications: 8,
                batch: 2,
            },
        )
        .unwrap();
        assert!(ci.runs.len() >= 3);
        assert!(ci.runs.len() <= 8);
        assert_eq!(ci.mean_response.n as usize, ci.runs.len());
        if ci.target_met {
            assert!(ci.mean_response.relative_half_width().unwrap() <= 0.5);
        } else {
            assert_eq!(ci.runs.len(), 8);
        }
    }

    #[test]
    fn replicate_ci_respects_max_cap() {
        let ci = replicate_ci(
            &quick_cfg(),
            RouterSpec::QueueLength,
            &CiOptions {
                jobs: 1,
                rel_target: 1e-12, // unreachable
                min_replications: 2,
                max_replications: 4,
                batch: 1,
            },
        )
        .unwrap();
        assert_eq!(ci.runs.len(), 4);
        assert!(!ci.target_met);
    }

    #[test]
    fn replicate_ci_prefix_matches_replicate() {
        // Auto-replication must reuse the same per-replication seeds as a
        // fixed-count run: the first k runs agree bit for bit.
        let ci = replicate_ci(
            &quick_cfg(),
            RouterSpec::NoSharing,
            &CiOptions {
                jobs: 2,
                rel_target: 1e-12,
                min_replications: 2,
                max_replications: 5,
                batch: 2,
            },
        )
        .unwrap();
        let fixed = replicate(&quick_cfg(), RouterSpec::NoSharing, ci.runs.len() as u64).unwrap();
        assert_eq!(ci.runs, fixed);
    }

    #[test]
    fn sweep_ci_summarizes_per_rate() {
        let pts = sweep_rates_ci(&quick_cfg(), RouterSpec::NoSharing, &[5.0, 8.0], 3, 2).unwrap();
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.runs.len(), 3);
            assert_eq!(p.mean_response.n, 3);
            assert!(p.mean_response.half_width_95.is_some());
            assert!(p.throughput.mean > 0.0);
        }
        assert!(pts[1].throughput.mean > pts[0].throughput.mean);
    }
}
