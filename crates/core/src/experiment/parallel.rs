//! Scoped-thread worker pool for embarrassingly parallel experiment runs.
//!
//! Simulation points in a sweep or replication grid are independent, so
//! they fan out across OS threads with no synchronization beyond a shared
//! work counter. Results land in their grid slot by index, so the output
//! order — and, because seeds are derived from grid coordinates (see
//! [`super::seed`]), every result bit — is identical for any thread count.
//!
//! Built on `std::thread::scope` only: no new crate dependencies.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used when `jobs == 0`: all available cores.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing `jobs` argument: `0` means [`default_jobs`].
#[must_use]
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        default_jobs()
    } else {
        jobs
    }
}

/// Maps `f` over `items` on `jobs` worker threads (`0` = all cores),
/// preserving input order. `f` receives `(index, item)`; the index is the
/// item's grid coordinate, available for deterministic seed derivation.
///
/// Work is pulled from a shared counter, so threads stay busy even when
/// item costs vary (e.g. high-load simulation points take far longer than
/// low-load ones).
///
/// # Panics
///
/// Panics if `f` panics on any item.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let jobs = resolve_jobs(jobs).min(items.len());
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                slots.lock().expect("no panics hold this lock")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// Fallible [`parallel_map`]: runs every item, then returns either all
/// results in input order or the error with the *smallest input index* —
/// the same error a serial loop would hit first — so error reporting is
/// deterministic across thread counts too.
///
/// # Errors
///
/// Returns the lowest-index error produced by `f`.
pub fn try_parallel_map<T, R, E, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let results = parallel_map(jobs, items, f);
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn maps_in_order_for_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = parallel_map(jobs, &items, |_, &x| x * x);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<u64> = (10..30).collect();
        let got = parallel_map(4, &items, |i, &x| (i, x));
        for (i, &(gi, gx)) in got.iter().enumerate() {
            assert_eq!(gi, i);
            assert_eq!(gx, items[i]);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = parallel_map(8, &[] as &[u64], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn all_items_run_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<u64> = (0..57).collect();
        let _ = parallel_map(8, &items, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let items: Vec<u64> = (0..50).collect();
        for jobs in [1, 2, 8] {
            let got: Result<Vec<u64>, u64> =
                try_parallel_map(
                    jobs,
                    &items,
                    |_, &x| {
                        if x % 7 == 3 {
                            Err(x)
                        } else {
                            Ok(x)
                        }
                    },
                );
            assert_eq!(got, Err(3), "jobs = {jobs}");
        }
    }

    #[test]
    fn try_map_ok_collects_all() {
        let items: Vec<u64> = (0..20).collect();
        let got: Result<Vec<u64>, ()> = try_parallel_map(3, &items, |_, &x| Ok(x + 1));
        assert_eq!(got.unwrap(), (1..21).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_jobs_means_all_cores() {
        assert_eq!(resolve_jobs(0), default_jobs());
        assert_eq!(resolve_jobs(3), 3);
        let items: Vec<u64> = (0..10).collect();
        let got = parallel_map(0, &items, |_, &x| x);
        assert_eq!(got, items);
    }
}
