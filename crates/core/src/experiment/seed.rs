//! Deterministic per-run seed derivation for the experiment engine.
//!
//! Every simulation run in a sweep/replication grid gets its seed from
//! [`derive_seed`]`(base_seed, rate_index, strategy_tag, replication)` — a
//! splitmix64-style mix of the grid coordinates. Because the seed depends
//! only on *where the run sits in the grid* (never on execution order,
//! thread id, or shared RNG state), results are bit-identical no matter how
//! many worker threads run the grid or in which order points complete.
//!
//! This replaces the old ad-hoc `base_seed + k * 7919` scheme, whose
//! low-entropy, arithmetically related seeds correlate replication streams
//! and collide trivially across grid dimensions (`rate_index` and
//! `replication` both advanced the same counter).

use crate::router::RouterSpec;
use hls_analytic::UtilizationEstimator;

/// Sentinel `rate_index` for runs that are not part of a rate sweep
/// (plain replications of one operating point).
pub const NO_RATE_INDEX: u64 = u64::MAX;

/// The splitmix64 finalizer: an invertible avalanche mix of one 64-bit
/// word (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
/// Generators*, OOPSLA 2014).
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one word into a running hash state.
fn mix(h: u64, word: u64) -> u64 {
    // XOR then avalanche: each step is a bijection of `h` for fixed
    // `word`, so two states that differ stay different within a step and
    // cross-word collisions require a full 64-bit hash collision.
    splitmix64(h ^ word)
}

/// Derives the seed for one run of an experiment grid.
///
/// The triple (`rate_index`, `strategy_tag`, `replication`) identifies the
/// grid point; `base_seed` is the user-chosen master seed. Distinct grid
/// points get statistically independent, effectively collision-free seeds,
/// and the mapping is a pure function — independent of thread count and
/// completion order.
#[must_use]
pub fn derive_seed(base_seed: u64, rate_index: u64, strategy_tag: u64, replication: u64) -> u64 {
    // A fixed domain tag keeps these seeds disjoint from other uses of the
    // master seed (e.g. passing it straight to a single run).
    let mut h = mix(0x4852_4c53_2d53_4545, base_seed); // "HRLS-SEE"[sic]
    h = mix(h, rate_index);
    h = mix(h, strategy_tag);
    h = mix(h, replication);
    h
}

/// A stable 64-bit tag identifying a routing strategy *and its parameters*
/// for seed derivation.
///
/// Unlike [`RouterSpec::label`], which formats floats to two decimals, the
/// tag folds in the exact IEEE-754 bits of every parameter, so e.g.
/// `Static {{ p_ship: 0.301 }}` and `Static {{ p_ship: 0.302 }}` get
/// different tags.
#[must_use]
pub fn strategy_tag(spec: &RouterSpec) -> u64 {
    fn est(e: UtilizationEstimator) -> u64 {
        match e {
            UtilizationEstimator::QueueLength => 1,
            UtilizationEstimator::NumInSystem => 2,
        }
    }
    let (discr, a, b) = match *spec {
        RouterSpec::NoSharing => (1u64, 0, 0),
        RouterSpec::Static { p_ship } => (2, p_ship.to_bits(), 0),
        RouterSpec::MeasuredResponse => (3, 0, 0),
        RouterSpec::QueueLength => (4, 0, 0),
        RouterSpec::UtilizationThreshold { threshold } => (5, threshold.to_bits(), 0),
        RouterSpec::MinIncoming { estimator } => (6, est(estimator), 0),
        RouterSpec::MinAverage { estimator } => (7, est(estimator), 0),
        RouterSpec::SmoothedMinAverage { estimator, scale } => (8, est(estimator), scale.to_bits()),
        RouterSpec::IslandAware { estimator } => (9, est(estimator), 0),
    };
    mix(mix(mix(0, discr), a), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_known_values() {
        // Reference values from the splitmix64 stream seeded with 0
        // (state advances by the golden gamma before finalizing).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(0x9E37_79B9_7F4A_7C15), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn derive_seed_is_pure() {
        let a = derive_seed(42, 3, 7, 1);
        let b = derive_seed(42, 3, 7, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn grid_axes_are_independent() {
        // Swapping values across axes must not produce the same seed, the
        // failure mode of the old `base + k * prime` scheme.
        assert_ne!(derive_seed(42, 1, 0, 0), derive_seed(42, 0, 1, 0));
        assert_ne!(derive_seed(42, 1, 0, 0), derive_seed(42, 0, 0, 1));
        assert_ne!(derive_seed(42, 0, 1, 0), derive_seed(42, 0, 0, 1));
    }

    #[test]
    fn dense_grid_is_collision_free() {
        let mut seen = HashSet::new();
        for rate in 0..32u64 {
            for strat in 0..16u64 {
                for rep in 0..64u64 {
                    assert!(
                        seen.insert(derive_seed(42, rate, strat, rep)),
                        "collision at ({rate}, {strat}, {rep})"
                    );
                }
            }
        }
    }

    #[test]
    fn strategy_tags_distinguish_parameters() {
        let t1 = strategy_tag(&RouterSpec::Static { p_ship: 0.301 });
        let t2 = strategy_tag(&RouterSpec::Static { p_ship: 0.302 });
        assert_ne!(t1, t2);
        let t3 = strategy_tag(&RouterSpec::UtilizationThreshold { threshold: 0.301 });
        assert_ne!(t1, t3, "same float bits, different variant");
    }

    #[test]
    fn strategy_tags_distinguish_estimators() {
        let q = strategy_tag(&RouterSpec::MinAverage {
            estimator: UtilizationEstimator::QueueLength,
        });
        let n = strategy_tag(&RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        });
        assert_ne!(q, n);
    }
}
