//! Across-replication summary statistics: mean, variance, and Student-t
//! confidence intervals for sweep points and replication sets.
//!
//! Reuses the `hls_sim` statistics kernel ([`Accumulator`] for the
//! moments, [`t_critical_95`] for the critical values) rather than
//! duplicating the math.

use hls_obs::LogHistogram;
use hls_sim::{t_critical_95, Accumulator};

/// Mean, variance, and 95% Student-t confidence half-width of one metric
/// across independent replications.
///
/// # Examples
///
/// ```
/// use hls_core::MetricSummary;
///
/// let s = MetricSummary::from_samples([2.0, 4.0, 6.0]);
/// assert_eq!(s.n, 3);
/// assert_eq!(s.mean, 4.0);
/// // t(2) = 4.303, s.d. = 2 => half-width 4.303 * 2 / sqrt(3)
/// assert!((s.half_width_95.unwrap() - 4.968).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Number of replications.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// 95% confidence half-width (`t_{0.975, n-1} * s / sqrt(n)`), or
    /// `None` with fewer than two replications.
    pub half_width_95: Option<f64>,
}

impl MetricSummary {
    /// Summarizes a set of independent samples.
    #[must_use]
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let acc: Accumulator = samples.into_iter().collect();
        let n = acc.count();
        let half =
            (n >= 2).then(|| t_critical_95(n as usize - 1) * acc.std_dev() / (n as f64).sqrt());
        MetricSummary {
            n,
            mean: acc.mean(),
            variance: acc.variance(),
            half_width_95: half,
        }
    }

    /// Summarizes the values recorded in a streaming histogram.
    ///
    /// The histogram tracks its moments exactly (see
    /// [`LogHistogram::mean`] / [`LogHistogram::variance`]), so this
    /// yields the same mean, variance, and Student-t interval as
    /// [`MetricSummary::from_samples`] over the raw values — letting
    /// merged cross-replication histograms double as summary statistics
    /// without retaining the samples.
    #[must_use]
    pub fn from_histogram(h: &LogHistogram) -> Self {
        let n = h.count();
        let half = (n >= 2).then(|| {
            let df = usize::try_from(n - 1).unwrap_or(usize::MAX);
            t_critical_95(df) * h.variance().sqrt() / (n as f64).sqrt()
        });
        MetricSummary {
            n,
            mean: h.mean(),
            variance: h.variance(),
            half_width_95: half,
        }
    }

    /// The 95% confidence interval `(lo, hi)`, or `None` with fewer than
    /// two replications.
    #[must_use]
    pub fn ci95(&self) -> Option<(f64, f64)> {
        self.half_width_95.map(|h| (self.mean - h, self.mean + h))
    }

    /// Half-width relative to the absolute mean, or `None` when no
    /// interval is available or the mean is zero.
    #[must_use]
    pub fn relative_half_width(&self) -> Option<f64> {
        let h = self.half_width_95?;
        if self.mean == 0.0 {
            None
        } else {
            Some(h / self.mean.abs())
        }
    }

    /// Whether the relative half-width is at or below `target`.
    ///
    /// Degenerate cases resolve conservatively useful: a zero half-width
    /// (identical replications) meets any target; a missing interval
    /// (fewer than two replications) meets none.
    #[must_use]
    pub fn meets_relative_target(&self, target: f64) -> bool {
        match self.half_width_95 {
            None => false,
            Some(h) => h == 0.0 || self.relative_half_width().is_some_and(|r| r <= target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_half_width() {
        // Samples 2, 4, 6: mean 4, variance 4, s.d. 2; t(2) = 4.303.
        let s = MetricSummary::from_samples([2.0, 4.0, 6.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 4.0);
        assert!((s.variance - 4.0).abs() < 1e-12);
        let expected = 4.303 * 2.0 / 3f64.sqrt();
        assert!((s.half_width_95.unwrap() - expected).abs() < 1e-9);
        let (lo, hi) = s.ci95().unwrap();
        assert!((lo - (4.0 - expected)).abs() < 1e-9);
        assert!((hi - (4.0 + expected)).abs() < 1e-9);
    }

    #[test]
    fn from_histogram_matches_from_samples() {
        let samples = [2.0, 4.0, 6.0, 9.5];
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let via_hist = MetricSummary::from_histogram(&h);
        let via_samples = MetricSummary::from_samples(samples);
        assert_eq!(via_hist.n, via_samples.n);
        assert!((via_hist.mean - via_samples.mean).abs() < 1e-12);
        assert!((via_hist.variance - via_samples.variance).abs() < 1e-9);
        let (a, b) = (
            via_hist.half_width_95.unwrap(),
            via_samples.half_width_95.unwrap(),
        );
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn single_sample_has_no_interval() {
        let s = MetricSummary::from_samples([3.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.half_width_95, None);
        assert_eq!(s.ci95(), None);
        assert_eq!(s.relative_half_width(), None);
        assert!(!s.meets_relative_target(1.0));
    }

    #[test]
    fn identical_samples_meet_any_target() {
        let s = MetricSummary::from_samples([5.0, 5.0, 5.0]);
        assert_eq!(s.half_width_95, Some(0.0));
        assert!(s.meets_relative_target(0.0));
    }

    #[test]
    fn zero_mean_never_meets_relative_target() {
        let s = MetricSummary::from_samples([-1.0, 1.0]);
        assert_eq!(s.mean, 0.0);
        assert!(!s.meets_relative_target(10.0));
    }

    #[test]
    fn relative_half_width_scales_with_mean() {
        let tight = MetricSummary::from_samples([99.0, 100.0, 101.0]);
        let loose = MetricSummary::from_samples([9.0, 10.0, 11.0]);
        let rt = tight.relative_half_width().unwrap();
        let rl = loose.relative_half_width().unwrap();
        assert!((rl / rt - 10.0).abs() < 1e-9, "{rl} vs {rt}");
        assert!(tight.meets_relative_target(0.05));
        assert!(!loose.meets_relative_target(0.05));
    }
}
