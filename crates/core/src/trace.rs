//! Protocol event tracing.
//!
//! When enabled, the simulator records every protocol-level event with its
//! timestamp. Traces serve two purposes: debugging, and the
//! protocol-invariant test suite (`tests/protocol_trace.rs`), which checks
//! properties such as per-link FIFO application of asynchronous updates and
//! commit/abort causality that cannot be observed from aggregate metrics.

use hls_lockmgr::LockId;
use hls_obs::{JsonObject, JsonlEvent, TraceSink};
use hls_sim::{SimDuration, SimTime};
use hls_workload::TxnClass;

use crate::txn::{PhaseBreakdown, Route};

/// A protocol-level event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A transaction arrived and was routed.
    Arrival {
        /// Transaction id.
        txn: u64,
        /// Originating site.
        site: usize,
        /// Class A or B.
        class: TxnClass,
        /// Chosen route.
        route: Route,
    },
    /// A transaction was aborted to break a deadlock (all locks released).
    DeadlockAbort {
        /// Victim transaction.
        txn: u64,
        /// Where it was running.
        route: Route,
    },
    /// A transaction found itself marked for abort at commit time and
    /// re-runs (locks retained).
    InvalidationAbort {
        /// Victim transaction.
        txn: u64,
        /// Where it was running.
        route: Route,
    },
    /// A local class A transaction committed at its site.
    LocalCommit {
        /// The committing transaction.
        txn: u64,
        /// Its site.
        site: usize,
        /// Updated (exclusive) locks whose coherence counts were bumped.
        updated: Vec<LockId>,
    },
    /// An asynchronous update message left a site for the central complex.
    AsyncSent {
        /// Originating site.
        site: usize,
        /// Lock ids carried (in commit order; batched messages carry
        /// several transactions' locks).
        locks: Vec<LockId>,
    },
    /// The central complex finished applying an asynchronous update.
    AsyncApplied {
        /// Originating site.
        site: usize,
        /// Lock ids applied.
        locks: Vec<LockId>,
        /// Central transactions invalidated (marked for abort) by it.
        invalidated: Vec<u64>,
    },
    /// A central/shipped transaction began its authentication phase.
    AuthStarted {
        /// The authenticating transaction.
        txn: u64,
        /// Master sites contacted.
        sites: Vec<usize>,
    },
    /// A master site finished processing an authentication request.
    AuthProcessed {
        /// The authenticating transaction.
        txn: u64,
        /// The master site.
        site: usize,
        /// `false` = coherence-count negative acknowledgement.
        positive: bool,
        /// Local holders displaced (marked for abort) by the seizure.
        displaced: Vec<u64>,
    },
    /// The central complex resolved an authentication round.
    AuthResolved {
        /// The authenticating transaction.
        txn: u64,
        /// `true` = commit fan-out; `false` = re-execution.
        committed: bool,
    },
    /// A scheduled fault transition fired (site/central/link state change).
    Fault {
        /// Human-readable transition, e.g. `site 3 down`.
        what: String,
    },
    /// A transaction was killed by a component crash (not a protocol
    /// abort: its locks were released and it will not re-run).
    CrashAbort {
        /// The killed transaction.
        txn: u64,
        /// Where it was running.
        route: Route,
    },
    /// An arrival was turned away because the components it needed were
    /// down (and failure-aware routing could not help or was disabled).
    Rejected {
        /// Originating site.
        site: usize,
        /// Class A or B.
        class: TxnClass,
    },
    /// Failure-aware routing overrode the configured strategy.
    Failover {
        /// The rerouted transaction.
        txn: u64,
        /// Where it was sent instead.
        route: Route,
    },
    /// A class B arrival found the central complex unreachable and was
    /// scheduled for a later retry (failure-aware mode).
    RetryScheduled {
        /// Originating site.
        site: usize,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// A completion reply reached the origin site.
    Completion {
        /// The completed transaction.
        txn: u64,
        /// Class A or B.
        class: TxnClass,
        /// Where it ran.
        route: Route,
        /// Response time.
        response: SimDuration,
        /// Number of re-runs it needed.
        attempts: u32,
        /// Per-phase decomposition of the response time.
        breakdown: PhaseBreakdown,
    },
}

impl TraceEvent {
    /// Stable snake_case tag for this event kind, used as the `kind`
    /// field of the JSONL trace schema and as a profiling key.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::DeadlockAbort { .. } => "deadlock_abort",
            TraceEvent::InvalidationAbort { .. } => "invalidation_abort",
            TraceEvent::LocalCommit { .. } => "local_commit",
            TraceEvent::AsyncSent { .. } => "async_sent",
            TraceEvent::AsyncApplied { .. } => "async_applied",
            TraceEvent::AuthStarted { .. } => "auth_started",
            TraceEvent::AuthProcessed { .. } => "auth_processed",
            TraceEvent::AuthResolved { .. } => "auth_resolved",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::CrashAbort { .. } => "crash_abort",
            TraceEvent::Rejected { .. } => "rejected",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::RetryScheduled { .. } => "retry_scheduled",
            TraceEvent::Completion { .. } => "completion",
        }
    }
}

fn route_tag(route: Route) -> &'static str {
    match route {
        Route::Local => "local",
        Route::Central => "central",
    }
}

fn class_tag(class: TxnClass) -> &'static str {
    match class {
        TxnClass::A => "A",
        TxnClass::B => "B",
    }
}

/// JSONL encoding of the protocol event set (trace schema version 1).
///
/// Every line carries `t` (simulated seconds) and `kind` (see
/// [`TraceEvent::kind`]); the remaining fields mirror the variant's
/// payload. The event set contains only protocol-level identifiers —
/// no host paths, credentials, or environment data.
impl JsonlEvent for TraceEvent {
    fn kind(&self) -> &'static str {
        TraceEvent::kind(self)
    }

    fn encode(&self, obj: &mut JsonObject) {
        match self {
            TraceEvent::Arrival {
                txn,
                site,
                class,
                route,
            } => {
                obj.num_u64("txn", *txn);
                obj.num_usize("site", *site);
                obj.str("class", class_tag(*class));
                obj.str("route", route_tag(*route));
            }
            TraceEvent::DeadlockAbort { txn, route }
            | TraceEvent::InvalidationAbort { txn, route }
            | TraceEvent::CrashAbort { txn, route }
            | TraceEvent::Failover { txn, route } => {
                obj.num_u64("txn", *txn);
                obj.str("route", route_tag(*route));
            }
            TraceEvent::LocalCommit { txn, site, updated } => {
                obj.num_u64("txn", *txn);
                obj.num_usize("site", *site);
                obj.arr_u64("updated", updated.iter().map(|l| u64::from(l.0)));
            }
            TraceEvent::AsyncSent { site, locks } => {
                obj.num_usize("site", *site);
                obj.arr_u64("locks", locks.iter().map(|l| u64::from(l.0)));
            }
            TraceEvent::AsyncApplied {
                site,
                locks,
                invalidated,
            } => {
                obj.num_usize("site", *site);
                obj.arr_u64("locks", locks.iter().map(|l| u64::from(l.0)));
                obj.arr_u64("invalidated", invalidated.iter().copied());
            }
            TraceEvent::AuthStarted { txn, sites } => {
                obj.num_u64("txn", *txn);
                obj.arr_u64("sites", sites.iter().map(|&s| s as u64));
            }
            TraceEvent::AuthProcessed {
                txn,
                site,
                positive,
                displaced,
            } => {
                obj.num_u64("txn", *txn);
                obj.num_usize("site", *site);
                obj.bool("positive", *positive);
                obj.arr_u64("displaced", displaced.iter().copied());
            }
            TraceEvent::AuthResolved { txn, committed } => {
                obj.num_u64("txn", *txn);
                obj.bool("committed", *committed);
            }
            TraceEvent::Fault { what } => {
                obj.str("what", what);
            }
            TraceEvent::Rejected { site, class } => {
                obj.num_usize("site", *site);
                obj.str("class", class_tag(*class));
            }
            TraceEvent::RetryScheduled { site, attempt } => {
                obj.num_usize("site", *site);
                obj.num_u64("attempt", u64::from(*attempt));
            }
            TraceEvent::Completion {
                txn,
                class,
                route,
                response,
                attempts,
                breakdown,
            } => {
                obj.num_u64("txn", *txn);
                obj.str("class", class_tag(*class));
                obj.str("route", route_tag(*route));
                obj.num_f64("response", response.as_secs());
                obj.num_u64("attempts", u64::from(*attempts));
                obj.num_f64("queueing", breakdown.queueing);
                obj.num_f64("execution", breakdown.execution);
                obj.num_f64("commit", breakdown.commit);
                obj.num_f64("authentication", breakdown.authentication);
                obj.num_f64("restart_backoff", breakdown.restart_backoff);
            }
        }
    }
}

/// A timestamped protocol trace.
///
/// # Examples
///
/// ```
/// use hls_core::{HybridSystem, RouterSpec, SystemConfig, TraceEvent};
///
/// let cfg = SystemConfig::paper_default()
///     .with_total_rate(5.0)
///     .with_horizon(20.0, 0.0);
/// let (_, trace) = HybridSystem::new(cfg, RouterSpec::NoSharing)?.run_traced();
/// let commits = trace
///     .filter(|_, e| matches!(e, TraceEvent::LocalCommit { .. }).then_some(()))
///     .count();
/// assert!(commits > 0);
/// # Ok::<(), hls_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<(SimTime, TraceEvent)>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        self.events.push((at, event));
    }

    /// All events in simulation order.
    #[must_use]
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events of one kind via a filter-map.
    pub fn filter<'a, T: 'a>(
        &'a self,
        f: impl Fn(SimTime, &'a TraceEvent) -> Option<T> + 'a,
    ) -> impl Iterator<Item = T> + 'a {
        self.events.iter().filter_map(move |(t, e)| f(*t, e))
    }
}

/// A [`Trace`] is itself an in-memory [`TraceSink`], so the simulator
/// streams events through one code path regardless of destination.
impl TraceSink<TraceEvent> for Trace {
    fn record(&mut self, at_secs: f64, event: &TraceEvent) {
        self.record(SimTime::from_secs(at_secs), event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_in_order() {
        let mut tr = Trace::new();
        assert!(tr.is_empty());
        tr.record(
            SimTime::from_secs(1.0),
            TraceEvent::AuthResolved {
                txn: 1,
                committed: true,
            },
        );
        tr.record(
            SimTime::from_secs(2.0),
            TraceEvent::AuthResolved {
                txn: 2,
                committed: false,
            },
        );
        assert_eq!(tr.len(), 2);
        let committed: Vec<u64> = tr
            .filter(|_, e| match e {
                TraceEvent::AuthResolved {
                    txn,
                    committed: true,
                } => Some(*txn),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![1]);
    }
}
