//! Protocol event tracing.
//!
//! When enabled, the simulator records every protocol-level event with its
//! timestamp. Traces serve two purposes: debugging, and the
//! protocol-invariant test suite (`tests/protocol_trace.rs`), which checks
//! properties such as per-link FIFO application of asynchronous updates and
//! commit/abort causality that cannot be observed from aggregate metrics.

use hls_lockmgr::LockId;
use hls_sim::{SimDuration, SimTime};
use hls_workload::TxnClass;

use crate::txn::Route;

/// A protocol-level event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A transaction arrived and was routed.
    Arrival {
        /// Transaction id.
        txn: u64,
        /// Originating site.
        site: usize,
        /// Class A or B.
        class: TxnClass,
        /// Chosen route.
        route: Route,
    },
    /// A transaction was aborted to break a deadlock (all locks released).
    DeadlockAbort {
        /// Victim transaction.
        txn: u64,
        /// Where it was running.
        route: Route,
    },
    /// A transaction found itself marked for abort at commit time and
    /// re-runs (locks retained).
    InvalidationAbort {
        /// Victim transaction.
        txn: u64,
        /// Where it was running.
        route: Route,
    },
    /// A local class A transaction committed at its site.
    LocalCommit {
        /// The committing transaction.
        txn: u64,
        /// Its site.
        site: usize,
        /// Updated (exclusive) locks whose coherence counts were bumped.
        updated: Vec<LockId>,
    },
    /// An asynchronous update message left a site for the central complex.
    AsyncSent {
        /// Originating site.
        site: usize,
        /// Lock ids carried (in commit order; batched messages carry
        /// several transactions' locks).
        locks: Vec<LockId>,
    },
    /// The central complex finished applying an asynchronous update.
    AsyncApplied {
        /// Originating site.
        site: usize,
        /// Lock ids applied.
        locks: Vec<LockId>,
        /// Central transactions invalidated (marked for abort) by it.
        invalidated: Vec<u64>,
    },
    /// A central/shipped transaction began its authentication phase.
    AuthStarted {
        /// The authenticating transaction.
        txn: u64,
        /// Master sites contacted.
        sites: Vec<usize>,
    },
    /// A master site finished processing an authentication request.
    AuthProcessed {
        /// The authenticating transaction.
        txn: u64,
        /// The master site.
        site: usize,
        /// `false` = coherence-count negative acknowledgement.
        positive: bool,
        /// Local holders displaced (marked for abort) by the seizure.
        displaced: Vec<u64>,
    },
    /// The central complex resolved an authentication round.
    AuthResolved {
        /// The authenticating transaction.
        txn: u64,
        /// `true` = commit fan-out; `false` = re-execution.
        committed: bool,
    },
    /// A scheduled fault transition fired (site/central/link state change).
    Fault {
        /// Human-readable transition, e.g. `site 3 down`.
        what: String,
    },
    /// A transaction was killed by a component crash (not a protocol
    /// abort: its locks were released and it will not re-run).
    CrashAbort {
        /// The killed transaction.
        txn: u64,
        /// Where it was running.
        route: Route,
    },
    /// An arrival was turned away because the components it needed were
    /// down (and failure-aware routing could not help or was disabled).
    Rejected {
        /// Originating site.
        site: usize,
        /// Class A or B.
        class: TxnClass,
    },
    /// Failure-aware routing overrode the configured strategy.
    Failover {
        /// The rerouted transaction.
        txn: u64,
        /// Where it was sent instead.
        route: Route,
    },
    /// A class B arrival found the central complex unreachable and was
    /// scheduled for a later retry (failure-aware mode).
    RetryScheduled {
        /// Originating site.
        site: usize,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// A completion reply reached the origin site.
    Completion {
        /// The completed transaction.
        txn: u64,
        /// Class A or B.
        class: TxnClass,
        /// Where it ran.
        route: Route,
        /// Response time.
        response: SimDuration,
        /// Number of re-runs it needed.
        attempts: u32,
    },
}

/// A timestamped protocol trace.
///
/// # Examples
///
/// ```
/// use hls_core::{HybridSystem, RouterSpec, SystemConfig, TraceEvent};
///
/// let cfg = SystemConfig::paper_default()
///     .with_total_rate(5.0)
///     .with_horizon(20.0, 0.0);
/// let (_, trace) = HybridSystem::new(cfg, RouterSpec::NoSharing)?.run_traced();
/// let commits = trace
///     .filter(|_, e| matches!(e, TraceEvent::LocalCommit { .. }).then_some(()))
///     .count();
/// assert!(commits > 0);
/// # Ok::<(), hls_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<(SimTime, TraceEvent)>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        self.events.push((at, event));
    }

    /// All events in simulation order.
    #[must_use]
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events of one kind via a filter-map.
    pub fn filter<'a, T: 'a>(
        &'a self,
        f: impl Fn(SimTime, &'a TraceEvent) -> Option<T> + 'a,
    ) -> impl Iterator<Item = T> + 'a {
        self.events.iter().filter_map(move |(t, e)| f(*t, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_in_order() {
        let mut tr = Trace::new();
        assert!(tr.is_empty());
        tr.record(
            SimTime::from_secs(1.0),
            TraceEvent::AuthResolved {
                txn: 1,
                committed: true,
            },
        );
        tr.record(
            SimTime::from_secs(2.0),
            TraceEvent::AuthResolved {
                txn: 2,
                committed: false,
            },
        );
        assert_eq!(tr.len(), 2);
        let committed: Vec<u64> = tr
            .filter(|_, e| match e {
                TraceEvent::AuthResolved {
                    txn,
                    committed: true,
                } => Some(*txn),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![1]);
    }
}
