//! Load-sharing routing strategies (Section 3.2 plus baselines).
//!
//! Every incoming **class A** transaction is offered to the router, which
//! decides whether to run it at its local site or ship it to the central
//! complex. Class B transactions always go central and never reach the
//! router.

use std::fmt;

use hls_analytic::{
    estimate_route_cases, heuristic_utilizations, Observed, SystemParams, UtilizationEstimator,
};
use hls_sim::{SimDuration, SimRng, SimTime};

use crate::txn::Route;

/// Everything a router may consult when deciding a route.
#[derive(Debug)]
pub struct RouteCtx<'a> {
    /// Decision time.
    pub now: SimTime,
    /// The arriving site.
    pub site: usize,
    /// Observed state: exact local quantities plus the latest (possibly
    /// stale) central snapshot.
    pub obs: Observed,
    /// Physical system parameters.
    pub params: &'a SystemParams,
    /// Dedicated routing RNG stream (used by probabilistic policies).
    pub rng: &'a mut SimRng,
}

/// Object-safe clone support for boxed routers. Blanket-implemented for
/// every `Clone` policy; lets system snapshots (taken by the speculative
/// executor for window rollback) carry router state along.
pub trait CloneRouter {
    /// Boxes a copy of `self`.
    fn clone_box(&self) -> Box<dyn Router>;
}

impl<T: Router + Clone + 'static> CloneRouter for T {
    fn clone_box(&self) -> Box<dyn Router> {
        Box::new(self.clone())
    }
}

/// A load-sharing routing policy.
///
/// Routers are driven by the simulator: [`Router::decide`] on each class A
/// arrival, and the completion hooks whenever a class A transaction
/// finishes (used by the measured-response-time heuristic). The `Send`
/// bound lets whole systems move across the speculative executor's
/// worker threads.
pub trait Router: fmt::Debug + CloneRouter + Send {
    /// Chooses where the incoming class A transaction runs.
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route;

    /// Observes the response time of a class A transaction that ran
    /// locally at `site`.
    fn on_local_completion(&mut self, site: usize, response: SimDuration) {
        let _ = (site, response);
    }

    /// Observes the response time of a class A transaction shipped from
    /// `site`.
    fn on_shipped_completion(&mut self, site: usize, response: SimDuration) {
        let _ = (site, response);
    }
}

/// Serializable router configuration; build the live router with
/// [`RouterSpec::build`].
///
/// # Examples
///
/// ```
/// use hls_core::{RouterSpec, UtilizationEstimator};
///
/// let spec = RouterSpec::MinAverage {
///     estimator: UtilizationEstimator::NumInSystem,
/// };
/// assert_eq!(spec.label(), "min-average(n)");
/// let _router = spec.build(10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouterSpec {
    /// Run every class A transaction locally (the no-load-sharing
    /// baseline of Figure 4.1).
    NoSharing,
    /// Ship with fixed probability `p_ship` (static probabilistic load
    /// sharing; the optimum probability comes from the analytic model).
    Static {
        /// Shipping probability in `[0, 1]`.
        p_ship: f64,
    },
    /// Heuristic of Section 3.2.3: ship iff the last shipped class A
    /// transaction's measured response beat the last locally-run one
    /// (curve A of Figure 4.2).
    MeasuredResponse,
    /// Heuristic of Section 3.2.4, basic form: ship iff the central CPU
    /// queue is shorter than the local queue (curve B of Figure 4.2).
    QueueLength,
    /// Tuned heuristic of Figure 4.4: ship iff
    /// `ρ_local − ρ_central > threshold` with utilizations estimated from
    /// queue lengths.
    UtilizationThreshold {
        /// The threshold θ (negative values ship even when the local site
        /// is *less* utilized, exploiting the faster central CPU).
        threshold: f64,
    },
    /// Section 3.2.1: minimize the incoming transaction's estimated
    /// response time (curves C/D of Figure 4.2).
    MinIncoming {
        /// Utilization estimator variant (a) or (b).
        estimator: UtilizationEstimator,
    },
    /// Section 3.2.2: minimize the estimated average response time of all
    /// transactions in the system (curves E/F of Figure 4.2 — the paper's
    /// best strategy).
    MinAverage {
        /// Utilization estimator variant (a) or (b).
        estimator: UtilizationEstimator,
    },
    /// Extension (not in the paper): the min-average criterion with a
    /// *probabilistic* decision — the shipping probability follows a
    /// logistic curve in the estimated advantage, so decisions near the
    /// indifference point are randomized. This breaks the synchronized
    /// "herding" that deterministic routers exhibit on stale central-state
    /// snapshots at large communications delays (see EXPERIMENTS.md,
    /// Figure 4.5 note).
    SmoothedMinAverage {
        /// Utilization estimator variant (a) or (b).
        estimator: UtilizationEstimator,
        /// Advantage (seconds of estimated average response) at which the
        /// shipping probability reaches ~73%; smaller = more decisive.
        scale: f64,
    },
    /// Extension for hardware-islands topologies: the min-average
    /// criterion priced with the arriving site's *actual* link delay
    /// instead of the nominal uniform `comm_delay`. Sites sharing the
    /// central complex's island see the cheap intra-island delay and
    /// ship readily; sites in remote islands see the inter-island
    /// premium on all four message legs and prefer to run locally —
    /// intra-island capacity is used before the premium is paid. On a
    /// uniform topology this is exactly [`RouterSpec::MinAverage`].
    IslandAware {
        /// Utilization estimator variant (a) or (b).
        estimator: UtilizationEstimator,
    },
}

impl RouterSpec {
    /// Instantiates the live router for `n_sites` local sites on a
    /// uniform topology (every link at the nominal `comm_delay`).
    #[must_use]
    pub fn build(&self, n_sites: usize) -> Box<dyn Router> {
        self.build_topo(n_sites, &[])
    }

    /// Instantiates the live router for `n_sites` local sites with the
    /// topology's per-site one-way link delays (seconds). An empty
    /// slice means the uniform topology. Only topology-aware policies
    /// consult the delays; every other policy builds identically to
    /// [`RouterSpec::build`].
    #[must_use]
    pub fn build_topo(&self, n_sites: usize, site_delays: &[f64]) -> Box<dyn Router> {
        match *self {
            RouterSpec::NoSharing => Box::new(NoSharing),
            RouterSpec::Static { p_ship } => Box::new(StaticShip::new(p_ship)),
            RouterSpec::MeasuredResponse => Box::new(MeasuredResponse::new(n_sites)),
            RouterSpec::QueueLength => Box::new(QueueLengthHeuristic),
            RouterSpec::UtilizationThreshold { threshold } => {
                Box::new(UtilizationThreshold { threshold })
            }
            RouterSpec::MinIncoming { estimator } => Box::new(MinIncoming { estimator }),
            RouterSpec::MinAverage { estimator } => Box::new(MinAverage { estimator }),
            RouterSpec::SmoothedMinAverage { estimator, scale } => {
                Box::new(SmoothedMinAverage::new(estimator, scale))
            }
            RouterSpec::IslandAware { estimator } => {
                Box::new(IslandAwareRouter::new(estimator, site_delays.to_vec()))
            }
        }
    }

    /// Short label for reports and figures.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RouterSpec::NoSharing => "no-sharing".into(),
            RouterSpec::Static { p_ship } => format!("static(p={p_ship:.2})"),
            RouterSpec::MeasuredResponse => "measured-rt".into(),
            RouterSpec::QueueLength => "queue-length".into(),
            RouterSpec::UtilizationThreshold { threshold } => {
                format!("threshold({threshold:+.2})")
            }
            RouterSpec::MinIncoming { estimator } => match estimator {
                UtilizationEstimator::QueueLength => "min-incoming(q)".into(),
                UtilizationEstimator::NumInSystem => "min-incoming(n)".into(),
            },
            RouterSpec::MinAverage { estimator } => match estimator {
                UtilizationEstimator::QueueLength => "min-average(q)".into(),
                UtilizationEstimator::NumInSystem => "min-average(n)".into(),
            },
            RouterSpec::SmoothedMinAverage { estimator, scale } => match estimator {
                UtilizationEstimator::QueueLength => format!("smoothed(q,{scale})"),
                UtilizationEstimator::NumInSystem => format!("smoothed(n,{scale})"),
            },
            RouterSpec::IslandAware { estimator } => match estimator {
                UtilizationEstimator::QueueLength => "island-aware(q)".into(),
                UtilizationEstimator::NumInSystem => "island-aware(n)".into(),
            },
        }
    }
}

/// No load sharing: class A transactions always run locally.
#[derive(Debug, Clone, Copy)]
struct NoSharing;

impl Router for NoSharing {
    fn decide(&mut self, _ctx: &mut RouteCtx<'_>) -> Route {
        Route::Local
    }
}

/// Static probabilistic load sharing.
#[derive(Debug, Clone, Copy)]
struct StaticShip {
    p_ship: f64,
}

impl StaticShip {
    fn new(p_ship: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_ship),
            "p_ship must be in [0, 1], got {p_ship}"
        );
        StaticShip { p_ship }
    }
}

impl Router for StaticShip {
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route {
        if ctx.rng.random::<f64>() < self.p_ship {
            Route::Central
        } else {
            Route::Local
        }
    }
}

/// Measured-response-time heuristic (Section 3.2.3).
///
/// Optimistic zero initialization: a site with no shipped sample yet treats
/// shipping as instantaneous, so both options get sampled early.
#[derive(Debug, Clone)]
struct MeasuredResponse {
    last_local: Vec<f64>,
    last_shipped: Vec<f64>,
}

impl MeasuredResponse {
    fn new(n_sites: usize) -> Self {
        MeasuredResponse {
            last_local: vec![0.0; n_sites],
            last_shipped: vec![0.0; n_sites],
        }
    }
}

impl Router for MeasuredResponse {
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route {
        if self.last_shipped[ctx.site] <= self.last_local[ctx.site] {
            Route::Central
        } else {
            Route::Local
        }
    }

    fn on_local_completion(&mut self, site: usize, response: SimDuration) {
        self.last_local[site] = response.as_secs();
    }

    fn on_shipped_completion(&mut self, site: usize, response: SimDuration) {
        self.last_shipped[site] = response.as_secs();
    }
}

/// Basic queue-length heuristic (Section 3.2.4): ship iff the central
/// queue is shorter.
#[derive(Debug, Clone, Copy)]
struct QueueLengthHeuristic;

impl Router for QueueLengthHeuristic {
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route {
        if ctx.obs.q_central < ctx.obs.q_local {
            Route::Central
        } else {
            Route::Local
        }
    }
}

/// Tuned utilization-threshold heuristic (Figure 4.4 / 4.7).
#[derive(Debug, Clone, Copy)]
struct UtilizationThreshold {
    threshold: f64,
}

impl Router for UtilizationThreshold {
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route {
        let (rho_l, rho_c) = heuristic_utilizations(&ctx.obs);
        if rho_l - rho_c > self.threshold {
            Route::Central
        } else {
            Route::Local
        }
    }
}

/// Section 3.2.1: minimize the incoming transaction's estimated response.
#[derive(Debug, Clone, Copy)]
struct MinIncoming {
    estimator: UtilizationEstimator,
}

impl Router for MinIncoming {
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route {
        let cases = estimate_route_cases(ctx.params, &ctx.obs, self.estimator);
        if cases.prefer_ship_incoming() {
            Route::Central
        } else {
            Route::Local
        }
    }
}

/// Section 3.2.2: minimize the estimated average response of all
/// transactions.
#[derive(Debug, Clone, Copy)]
struct MinAverage {
    estimator: UtilizationEstimator,
}

impl Router for MinAverage {
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route {
        let cases = estimate_route_cases(ctx.params, &ctx.obs, self.estimator);
        if cases.prefer_ship_average(&ctx.obs) {
            Route::Central
        } else {
            Route::Local
        }
    }
}

/// Island-aware routing (see [`RouterSpec::IslandAware`]): min-average
/// with the ship/run-local trade priced at the arriving site's actual
/// link delay.
///
/// The four per-transaction message legs (ship, result, plus the commit
/// round trip) all traverse the arriving site's link, so substituting
/// its true delay into [`SystemParams::comm_delay`] before estimation
/// prices the inter-island premium exactly where it is paid. With no
/// delays registered (or a uniform vector) the substitution is the
/// nominal value and the router reduces to plain min-average.
#[derive(Debug, Clone)]
pub struct IslandAwareRouter {
    estimator: UtilizationEstimator,
    /// Per-site one-way link delay, seconds; empty = uniform topology.
    site_delays: Vec<f64>,
}

impl IslandAwareRouter {
    /// Builds the router from the estimator variant and the topology's
    /// per-site one-way link delays (empty for a uniform topology).
    ///
    /// # Panics
    ///
    /// Panics if any delay is negative or non-finite.
    #[must_use]
    pub fn new(estimator: UtilizationEstimator, site_delays: Vec<f64>) -> Self {
        assert!(
            site_delays.iter().all(|d| d.is_finite() && *d >= 0.0),
            "site delays must be finite and >= 0"
        );
        IslandAwareRouter {
            estimator,
            site_delays,
        }
    }
}

impl Router for IslandAwareRouter {
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route {
        let mut params = *ctx.params;
        if let Some(&d) = self.site_delays.get(ctx.site) {
            params.comm_delay = d;
        }
        let cases = estimate_route_cases(&params, &ctx.obs, self.estimator);
        if cases.prefer_ship_average(&ctx.obs) {
            Route::Central
        } else {
            Route::Local
        }
    }
}

/// Extension: probabilistic min-average routing (see
/// [`RouterSpec::SmoothedMinAverage`]).
#[derive(Debug, Clone, Copy)]
struct SmoothedMinAverage {
    estimator: UtilizationEstimator,
    scale: f64,
}

impl SmoothedMinAverage {
    fn new(estimator: UtilizationEstimator, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "smoothing scale must be positive and finite, got {scale}"
        );
        SmoothedMinAverage { estimator, scale }
    }
}

impl Router for SmoothedMinAverage {
    fn decide(&mut self, ctx: &mut RouteCtx<'_>) -> Route {
        let cases = estimate_route_cases(ctx.params, &ctx.obs, self.estimator);
        let advantage = cases.average_advantage_of_shipping(&ctx.obs);
        let p_ship = 1.0 / (1.0 + (-advantage / self.scale).exp());
        if ctx.rng.random::<f64>() < p_ship {
            Route::Central
        } else {
            Route::Local
        }
    }
}

/// What the failure-aware layer decided for an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAwareDecision {
    /// Execute now on the given route.
    Run(Route),
    /// The central complex is unreachable; try again after a backoff
    /// (class B under failure-aware routing).
    Retry,
    /// Every component the transaction needs is down — turn it away.
    Reject,
}

/// Wraps the configured routing strategy with component-availability
/// awareness.
///
/// With both the local site and the central complex reachable, the wrapper
/// is transparent: it delegates to the inner strategy, drawing from the
/// same RNG stream, so fault-free runs are bit-identical with or without
/// it. During an outage it overrides the strategy:
///
/// * class A with its **site down** fails over to the central complex
///   (when `failover` is enabled; rejected otherwise);
/// * class A with the **central complex unreachable** runs locally
///   (without failover the inner strategy still decides, and a `Central`
///   choice is rejected — modelling a router that is oblivious to
///   failures);
/// * class B with the central complex unreachable retries with backoff
///   (with failover) or is rejected;
/// * with **both down**, arrivals are rejected.
#[derive(Debug)]
pub struct FailureAwareRouter {
    inner: Box<dyn Router>,
    failover: bool,
}

impl Clone for FailureAwareRouter {
    fn clone(&self) -> Self {
        FailureAwareRouter {
            inner: self.inner.clone_box(),
            failover: self.failover,
        }
    }
}

impl FailureAwareRouter {
    /// Wraps `inner`; `failover` enables the availability overrides.
    #[must_use]
    pub fn new(inner: Box<dyn Router>, failover: bool) -> Self {
        FailureAwareRouter { inner, failover }
    }

    /// Routes a class A arrival given which components are reachable.
    pub fn decide_class_a(
        &mut self,
        ctx: &mut RouteCtx<'_>,
        local_ok: bool,
        central_ok: bool,
    ) -> FaultAwareDecision {
        match (local_ok, central_ok) {
            (true, true) => FaultAwareDecision::Run(self.inner.decide(ctx)),
            (false, true) => {
                if self.failover {
                    FaultAwareDecision::Run(Route::Central)
                } else {
                    FaultAwareDecision::Reject
                }
            }
            (true, false) => {
                if self.failover {
                    FaultAwareDecision::Run(Route::Local)
                } else {
                    // A failure-oblivious strategy still decides (same RNG
                    // draws as ever); shipping into the outage fails.
                    match self.inner.decide(ctx) {
                        Route::Local => FaultAwareDecision::Run(Route::Local),
                        Route::Central => FaultAwareDecision::Reject,
                    }
                }
            }
            (false, false) => FaultAwareDecision::Reject,
        }
    }

    /// Routes a class B arrival. `ok` is whether every component it needs
    /// is reachable (the central complex; plus the origin site in
    /// remote-calls mode); `retries_left` is whether its retry budget
    /// allows another backoff.
    pub fn decide_class_b(&mut self, ok: bool, retries_left: bool) -> FaultAwareDecision {
        if ok {
            FaultAwareDecision::Run(Route::Central)
        } else if self.failover && retries_left {
            FaultAwareDecision::Retry
        } else {
            FaultAwareDecision::Reject
        }
    }

    /// Forwards a local class A completion to the inner strategy.
    pub fn on_local_completion(&mut self, site: usize, response: SimDuration) {
        self.inner.on_local_completion(site, response);
    }

    /// Forwards a shipped class A completion to the inner strategy.
    pub fn on_shipped_completion(&mut self, site: usize, response: SimDuration) {
        self.inner.on_shipped_completion(site, response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_sim::RngStreams;

    fn ctx<'a>(params: &'a SystemParams, rng: &'a mut SimRng, obs: Observed) -> RouteCtx<'a> {
        RouteCtx {
            now: SimTime::ZERO,
            site: 0,
            obs,
            params,
            rng,
        }
    }

    fn ctx_at<'a>(
        params: &'a SystemParams,
        rng: &'a mut SimRng,
        site: usize,
        obs: Observed,
    ) -> RouteCtx<'a> {
        RouteCtx {
            now: SimTime::ZERO,
            site,
            obs,
            params,
            rng,
        }
    }

    #[test]
    fn island_aware_reduces_to_min_average_on_uniform_topology() {
        let params = SystemParams::paper_default();
        let est = UtilizationEstimator::NumInSystem;
        let mut rng = RngStreams::new(4).stream(0);
        let mut plain = RouterSpec::MinAverage { estimator: est }.build(10);
        // Both the no-delays build and a uniform vector at the nominal
        // delay must agree with min-average everywhere.
        let mut bare = RouterSpec::IslandAware { estimator: est }.build(10);
        let mut uniform =
            RouterSpec::IslandAware { estimator: est }.build_topo(10, &[params.comm_delay; 10]);
        for q in 0..30 {
            let obs = Observed {
                q_local: f64::from(q),
                n_local: f64::from(q) + 1.0,
                q_central: 3.0,
                n_central: 8.0,
                ..Observed::default()
            };
            let want = plain.decide(&mut ctx(&params, &mut rng, obs));
            assert_eq!(bare.decide(&mut ctx(&params, &mut rng, obs)), want);
            assert_eq!(uniform.decide(&mut ctx(&params, &mut rng, obs)), want);
        }
    }

    #[test]
    fn island_aware_pays_the_premium_only_intra_island() {
        // Two sites, same observed load: site 0 shares the central
        // island (cheap 0.05 s link), site 1 is across the island
        // boundary (2 s link). The documented choice: the intra-island
        // site ships its overload, the remote site eats it locally
        // rather than paying four 2-second legs.
        let params = SystemParams::paper_default();
        let est = UtilizationEstimator::QueueLength;
        let mut rng = RngStreams::new(5).stream(0);
        let mut r = RouterSpec::IslandAware { estimator: est }.build_topo(2, &[0.05, 2.0]);
        let obs = Observed {
            q_local: 6.0,
            n_local: 7.0,
            ..Observed::default()
        };
        assert_eq!(
            r.decide(&mut ctx_at(&params, &mut rng, 0, obs)),
            Route::Central,
            "intra-island site should use the cheap link"
        );
        assert_eq!(
            r.decide(&mut ctx_at(&params, &mut rng, 1, obs)),
            Route::Local,
            "remote site should not pay the inter-island premium"
        );
    }

    #[test]
    fn threshold_router_keeps_the_fast_site_local() {
        // Known value: q_local = 4 (rho 0.8), q_central = 2 (rho 2/3).
        // On nominal hardware the local site looks busier and the
        // transaction ships; at double speed its normalized utilization
        // halves to 0.4 and the same queue stays local.
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(6).stream(0);
        let mut r = RouterSpec::UtilizationThreshold { threshold: 0.0 }.build(10);
        let nominal = Observed {
            q_local: 4.0,
            q_central: 2.0,
            ..Observed::default()
        };
        assert_eq!(
            r.decide(&mut ctx(&params, &mut rng, nominal)),
            Route::Central
        );
        let fast = Observed {
            local_speed: 2.0,
            ..nominal
        };
        assert_eq!(r.decide(&mut ctx(&params, &mut rng, fast)), Route::Local);
    }

    #[test]
    fn min_average_routers_respect_site_speed() {
        // A queue that ships on nominal hardware is kept local once the
        // site is fast enough to drain it, for both min-criteria.
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(7).stream(0);
        let nominal = Observed {
            q_local: 9.0,
            n_local: 10.0,
            ..Observed::default()
        };
        let fast = Observed {
            local_speed: 8.0,
            ..nominal
        };
        for spec in [
            RouterSpec::MinAverage {
                estimator: UtilizationEstimator::QueueLength,
            },
            RouterSpec::MinIncoming {
                estimator: UtilizationEstimator::QueueLength,
            },
        ] {
            let mut r = spec.build(10);
            assert_eq!(
                r.decide(&mut ctx(&params, &mut rng, nominal)),
                Route::Central,
                "{} kept an overloaded nominal site local",
                spec.label()
            );
            assert_eq!(
                r.decide(&mut ctx(&params, &mut rng, fast)),
                Route::Local,
                "{} shipped from a fast site",
                spec.label()
            );
        }
    }

    #[test]
    fn no_sharing_never_ships() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(1).stream(0);
        let mut r = RouterSpec::NoSharing.build(10);
        for _ in 0..50 {
            let obs = Observed {
                q_local: 100.0,
                ..Observed::default()
            };
            assert_eq!(r.decide(&mut ctx(&params, &mut rng, obs)), Route::Local);
        }
    }

    #[test]
    fn static_matches_probability() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(2).stream(0);
        let mut r = RouterSpec::Static { p_ship: 0.3 }.build(10);
        let n = 20_000;
        let shipped = (0..n)
            .filter(|_| {
                r.decide(&mut ctx(&params, &mut rng, Observed::default())) == Route::Central
            })
            .count();
        let frac = shipped as f64 / f64::from(n);
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "p_ship")]
    fn static_rejects_bad_probability() {
        let _ = RouterSpec::Static { p_ship: 1.5 }.build(10);
    }

    #[test]
    fn queue_length_compares_queues() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(3).stream(0);
        let mut r = RouterSpec::QueueLength.build(10);
        let obs = Observed {
            q_local: 5.0,
            q_central: 2.0,
            ..Observed::default()
        };
        assert_eq!(r.decide(&mut ctx(&params, &mut rng, obs)), Route::Central);
        let obs = Observed {
            q_local: 2.0,
            q_central: 2.0,
            ..Observed::default()
        };
        assert_eq!(r.decide(&mut ctx(&params, &mut rng, obs)), Route::Local);
    }

    #[test]
    fn threshold_shifts_the_decision() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(4).stream(0);
        // rho_l = 0.5, rho_c = 0.5 -> difference 0.
        let obs = Observed {
            q_local: 1.0,
            q_central: 1.0,
            ..Observed::default()
        };
        let mut strict = RouterSpec::UtilizationThreshold { threshold: 0.0 }.build(10);
        assert_eq!(
            strict.decide(&mut ctx(&params, &mut rng, obs)),
            Route::Local
        );
        let mut eager = RouterSpec::UtilizationThreshold { threshold: -0.2 }.build(10);
        assert_eq!(
            eager.decide(&mut ctx(&params, &mut rng, obs)),
            Route::Central
        );
    }

    #[test]
    fn measured_response_follows_samples() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(5).stream(0);
        let mut r = RouterSpec::MeasuredResponse.build(2);
        // Optimistic start: ships first.
        assert_eq!(
            r.decide(&mut ctx(&params, &mut rng, Observed::default())),
            Route::Central
        );
        r.on_shipped_completion(0, SimDuration::from_secs(3.0));
        r.on_local_completion(0, SimDuration::from_secs(1.0));
        assert_eq!(
            r.decide(&mut ctx(&params, &mut rng, Observed::default())),
            Route::Local
        );
        r.on_local_completion(0, SimDuration::from_secs(5.0));
        assert_eq!(
            r.decide(&mut ctx(&params, &mut rng, Observed::default())),
            Route::Central
        );
    }

    #[test]
    fn measured_response_is_per_site() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(6).stream(0);
        let mut r = RouterSpec::MeasuredResponse.build(2);
        r.on_local_completion(0, SimDuration::from_secs(1.0));
        r.on_shipped_completion(0, SimDuration::from_secs(9.0));
        // Site 1 is untouched: still optimistic about shipping.
        let mut c = ctx(&params, &mut rng, Observed::default());
        c.site = 1;
        assert_eq!(r.decide(&mut c), Route::Central);
    }

    #[test]
    fn min_incoming_ships_under_local_overload() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(7).stream(0);
        for est in [
            UtilizationEstimator::QueueLength,
            UtilizationEstimator::NumInSystem,
        ] {
            let mut r = RouterSpec::MinIncoming { estimator: est }.build(10);
            let overloaded = Observed {
                q_local: 15.0,
                n_local: 18.0,
                ..Observed::default()
            };
            assert_eq!(
                r.decide(&mut ctx(&params, &mut rng, overloaded)),
                Route::Central
            );
            assert_eq!(
                r.decide(&mut ctx(&params, &mut rng, Observed::default())),
                Route::Local
            );
        }
    }

    #[test]
    fn min_average_runs_and_is_deterministic() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(8).stream(0);
        let mut r = RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        }
        .build(10);
        let obs = Observed {
            q_local: 6.0,
            n_local: 8.0,
            q_central: 1.0,
            n_central: 5.0,
            ..Observed::default()
        };
        let a = r.decide(&mut ctx(&params, &mut rng, obs));
        let b = r.decide(&mut ctx(&params, &mut rng, obs));
        assert_eq!(a, b);
    }

    #[test]
    fn smoothed_router_is_probabilistic_near_indifference() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(9).stream(0);
        let mut r = RouterSpec::SmoothedMinAverage {
            estimator: UtilizationEstimator::QueueLength,
            scale: 0.2,
        }
        .build(10);
        // A state where local overload clearly favours shipping: nearly
        // always ships, but not deterministically at modest advantage.
        let overloaded = Observed {
            q_local: 12.0,
            n_local: 14.0,
            ..Observed::default()
        };
        let ships = (0..500)
            .filter(|_| r.decide(&mut ctx(&params, &mut rng, overloaded)) == Route::Central)
            .count();
        assert!(ships > 450, "ships = {ships}");
        // Zero load favours local (advantage ~ -0.2 s, scale 0.2 =>
        // p_ship ~ 0.25), but the decision stays probabilistic.
        let keeps = (0..500)
            .filter(|_| r.decide(&mut ctx(&params, &mut rng, Observed::default())) == Route::Local)
            .count();
        assert!((300..500).contains(&keeps), "keeps = {keeps}");
    }

    #[test]
    #[should_panic(expected = "smoothing scale")]
    fn smoothed_router_rejects_bad_scale() {
        let _ = RouterSpec::SmoothedMinAverage {
            estimator: UtilizationEstimator::QueueLength,
            scale: 0.0,
        }
        .build(10);
    }

    #[test]
    fn failure_aware_is_transparent_when_everything_is_up() {
        let params = SystemParams::paper_default();
        let mut rng_a = RngStreams::new(11).stream(0);
        let mut rng_b = RngStreams::new(11).stream(0);
        let spec = RouterSpec::Static { p_ship: 0.5 };
        let mut plain = spec.build(10);
        let mut wrapped = FailureAwareRouter::new(spec.build(10), true);
        for _ in 0..200 {
            let direct = plain.decide(&mut ctx(&params, &mut rng_a, Observed::default()));
            let via = wrapped.decide_class_a(
                &mut ctx(&params, &mut rng_b, Observed::default()),
                true,
                true,
            );
            assert_eq!(via, FaultAwareDecision::Run(direct));
        }
    }

    #[test]
    fn failure_aware_overrides_during_outages() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(12).stream(0);
        let mut r = FailureAwareRouter::new(RouterSpec::NoSharing.build(10), true);
        // Site down: class A fails over to the central complex.
        assert_eq!(
            r.decide_class_a(
                &mut ctx(&params, &mut rng, Observed::default()),
                false,
                true
            ),
            FaultAwareDecision::Run(Route::Central)
        );
        // Central down: class A runs locally, class B backs off.
        assert_eq!(
            r.decide_class_a(
                &mut ctx(&params, &mut rng, Observed::default()),
                true,
                false
            ),
            FaultAwareDecision::Run(Route::Local)
        );
        assert_eq!(r.decide_class_b(false, true), FaultAwareDecision::Retry);
        assert_eq!(r.decide_class_b(false, false), FaultAwareDecision::Reject);
        assert_eq!(
            r.decide_class_b(true, true),
            FaultAwareDecision::Run(Route::Central)
        );
        // Both down: nothing can run.
        assert_eq!(
            r.decide_class_a(
                &mut ctx(&params, &mut rng, Observed::default()),
                false,
                false
            ),
            FaultAwareDecision::Reject
        );
    }

    #[test]
    fn failure_oblivious_wrapper_rejects_instead_of_rerouting() {
        let params = SystemParams::paper_default();
        let mut rng = RngStreams::new(13).stream(0);
        let mut r = FailureAwareRouter::new(RouterSpec::Static { p_ship: 1.0 }.build(10), false);
        // Site down, no failover: rejected outright.
        assert_eq!(
            r.decide_class_a(
                &mut ctx(&params, &mut rng, Observed::default()),
                false,
                true
            ),
            FaultAwareDecision::Reject
        );
        // Central down and the oblivious strategy insists on shipping.
        assert_eq!(
            r.decide_class_a(
                &mut ctx(&params, &mut rng, Observed::default()),
                true,
                false
            ),
            FaultAwareDecision::Reject
        );
        assert_eq!(r.decide_class_b(false, true), FaultAwareDecision::Reject);
        // A local-preferring strategy still runs locally.
        let mut local = FailureAwareRouter::new(RouterSpec::NoSharing.build(10), false);
        assert_eq!(
            local.decide_class_a(
                &mut ctx(&params, &mut rng, Observed::default()),
                true,
                false
            ),
            FaultAwareDecision::Run(Route::Local)
        );
    }

    #[test]
    fn labels_are_unique() {
        let specs = [
            RouterSpec::NoSharing,
            RouterSpec::Static { p_ship: 0.5 },
            RouterSpec::MeasuredResponse,
            RouterSpec::QueueLength,
            RouterSpec::UtilizationThreshold { threshold: -0.2 },
            RouterSpec::MinIncoming {
                estimator: UtilizationEstimator::QueueLength,
            },
            RouterSpec::MinIncoming {
                estimator: UtilizationEstimator::NumInSystem,
            },
            RouterSpec::MinAverage {
                estimator: UtilizationEstimator::QueueLength,
            },
            RouterSpec::MinAverage {
                estimator: UtilizationEstimator::NumInSystem,
            },
            RouterSpec::SmoothedMinAverage {
                estimator: UtilizationEstimator::NumInSystem,
                scale: 0.2,
            },
        ];
        let mut labels: Vec<String> = specs.iter().map(RouterSpec::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), specs.len());
    }
}
