//! Measurement collection and run-level results.

use std::fmt;

use hls_obs::{LogHistogram, ProfileReport};
use hls_sim::{Accumulator, BatchMeans, Histogram, SimDuration, SimTime};
use hls_workload::TxnClass;

use crate::txn::{PhaseBreakdown, Route};

/// Abort counters, by victim and cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbortCounts {
    /// Local class A transactions aborted by a committed shipped/central
    /// transaction's authentication phase.
    pub local_invalidated: u64,
    /// Central transactions aborted because an asynchronous update
    /// invalidated a lock they held.
    pub central_invalidated: u64,
    /// Central transactions re-executed after a coherence-count negative
    /// acknowledgement in the authentication phase.
    pub central_neg_ack: u64,
    /// Local transactions aborted to break a deadlock.
    pub deadlock_local: u64,
    /// Central transactions aborted to break a deadlock.
    pub deadlock_central: u64,
}

impl AbortCounts {
    /// Total aborts of all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.local_invalidated
            + self.central_invalidated
            + self.central_neg_ack
            + self.deadlock_local
            + self.deadlock_central
    }

    /// Adds a delta captured by a journaled [`MetricsOp::Abort`].
    pub(crate) fn absorb(&mut self, delta: &AbortCounts) {
        self.local_invalidated += delta.local_invalidated;
        self.central_invalidated += delta.central_invalidated;
        self.central_neg_ack += delta.central_neg_ack;
        self.deadlock_local += delta.deadlock_local;
        self.deadlock_central += delta.deadlock_central;
    }
}

/// Availability counters produced by the fault-injection layer.
///
/// Every field is exactly zero (and the outage mean absent) when the fault
/// schedule is empty, so fault-free runs are unchanged by this machinery.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AvailabilityMetrics {
    /// Class A arrivals turned away because the components they needed
    /// were down.
    pub rejected_class_a: u64,
    /// Class B arrivals turned away (after exhausting retries, if
    /// failure-aware).
    pub rejected_class_b: u64,
    /// Transactions killed by a local-site crash.
    pub crash_aborts_site: u64,
    /// Transactions killed by a central-complex crash.
    pub crash_aborts_central: u64,
    /// Class A arrivals shipped centrally because their site was down.
    pub failover_shipped: u64,
    /// Class A arrivals forced local because the central complex was
    /// unreachable.
    pub failover_local: u64,
    /// Class B retry attempts scheduled while the central complex was
    /// unreachable.
    pub retries: u64,
    /// Messages held in store-and-forward buffers by link/endpoint
    /// failures (each message counted once per deferral).
    pub deferred_messages: u64,
    /// Summed component downtime (site + central outages) overlapping the
    /// measurement window, seconds.
    pub downtime_secs: f64,
    /// Mean response time of transactions whose lifetime overlapped a
    /// fault window — the downtime-weighted counterpart of
    /// [`RunMetrics::mean_response`].
    pub mean_response_during_outage: Option<f64>,
}

impl AvailabilityMetrics {
    /// Adds a delta captured by a journaled [`MetricsOp::Availability`].
    ///
    /// The derived `mean_response_during_outage` is never part of a delta
    /// (it is computed at finalize from the outage accumulator) and is
    /// left untouched.
    pub(crate) fn absorb(&mut self, delta: &AvailabilityMetrics) {
        debug_assert!(delta.mean_response_during_outage.is_none());
        self.rejected_class_a += delta.rejected_class_a;
        self.rejected_class_b += delta.rejected_class_b;
        self.crash_aborts_site += delta.crash_aborts_site;
        self.crash_aborts_central += delta.crash_aborts_central;
        self.failover_shipped += delta.failover_shipped;
        self.failover_local += delta.failover_local;
        self.retries += delta.retries;
        self.deferred_messages += delta.deferred_messages;
        self.downtime_secs += delta.downtime_secs;
    }
}

/// Identifies one response-time histogram: which class the transaction
/// belonged to, where it ran, and which site it originated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseKey {
    /// Transaction class.
    pub class: TxnClass,
    /// Where the transaction executed.
    pub route: Route,
    /// Originating local site index.
    pub site: usize,
}

/// Names of the transaction phases tracked by the per-phase histograms,
/// in report order. `authentication` is only recorded for
/// centrally-executed transactions; `restart_backoff` records each
/// deadlock-victim backoff delay individually (not per completion).
pub const PHASE_NAMES: [&str; 5] = [
    "queueing",
    "execution",
    "commit",
    "authentication",
    "restart_backoff",
];

/// Response classes per site: local A, shipped A, class B.
const KINDS_PER_SITE: usize = 3;

fn kind_of(class: TxnClass, route: Route) -> usize {
    match (class, route) {
        (TxnClass::A, Route::Local) => 0,
        (TxnClass::A, Route::Central) => 1,
        (TxnClass::B, _) => 2,
    }
}

fn key_of(kind: usize, site: usize) -> ResponseKey {
    match kind {
        0 => ResponseKey {
            class: TxnClass::A,
            route: Route::Local,
            site,
        },
        1 => ResponseKey {
            class: TxnClass::A,
            route: Route::Central,
            site,
        },
        _ => ResponseKey {
            class: TxnClass::B,
            route: Route::Central,
            site,
        },
    }
}

/// Optional streaming histograms keyed by `(class, route, site)` and by
/// transaction phase. Allocated once at enable time; recording never
/// allocates.
#[derive(Debug, Clone)]
struct ObsHists {
    n_sites: usize,
    /// Indexed `site * KINDS_PER_SITE + kind`.
    response: Vec<LogHistogram>,
    /// Indexed by [`PHASE_NAMES`] position.
    phases: Vec<LogHistogram>,
}

impl ObsHists {
    fn new(n_sites: usize) -> Self {
        ObsHists {
            n_sites,
            response: (0..n_sites * KINDS_PER_SITE)
                .map(|_| LogHistogram::new())
                .collect(),
            phases: (0..PHASE_NAMES.len())
                .map(|_| LogHistogram::new())
                .collect(),
        }
    }

    fn record(&mut self, site: usize, kind: usize, rt: SimDuration, phases: &PhaseBreakdown) {
        self.response[site * KINDS_PER_SITE + kind].record(rt.as_secs());
        self.phases[0].record(phases.queueing);
        self.phases[1].record(phases.execution);
        self.phases[2].record(phases.commit);
        if kind != 0 {
            self.phases[3].record(phases.authentication);
        }
    }
}

/// Observability report attached to [`RunMetrics`] when histograms or
/// profiling are enabled via `ObsConfig`.
///
/// Histograms from independent replications merge exactly (see
/// [`LogHistogram::merge`]), so replicated experiments can report tail
/// quantiles over the union of their samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Non-empty response-time histograms, ordered by site then by
    /// (local A, shipped A, class B).
    pub response: Vec<(ResponseKey, LogHistogram)>,
    /// Non-empty per-phase histograms, in [`PHASE_NAMES`] order.
    pub phases: Vec<(&'static str, LogHistogram)>,
    /// Profile table (empty unless profiling was enabled).
    pub profile: ProfileReport,
}

impl ObsReport {
    /// Merges another report into this one: histograms with matching
    /// keys add elementwise, unmatched keys are appended, and profile
    /// tables add by row name.
    pub fn merge(&mut self, other: &ObsReport) {
        for (key, hist) in &other.response {
            match self.response.iter_mut().find(|(k, _)| k == key) {
                Some((_, h)) => h.merge(hist),
                None => self.response.push((*key, hist.clone())),
            }
        }
        for (name, hist) in &other.phases {
            match self.phases.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.merge(hist),
                None => self.phases.push((name, hist.clone())),
            }
        }
        self.profile.merge(&other.profile);
    }

    /// Merges the reports of many runs (skipping runs without one),
    /// or `None` when no run carried a report.
    #[must_use]
    pub fn merged_from_runs<'a>(
        runs: impl IntoIterator<Item = &'a RunMetrics>,
    ) -> Option<ObsReport> {
        let mut out: Option<ObsReport> = None;
        for r in runs {
            if let Some(obs) = &r.obs {
                match &mut out {
                    Some(acc) => acc.merge(obs),
                    None => out = Some(obs.clone()),
                }
            }
        }
        out
    }

    /// Response histograms aggregated over sites, one per `(class,
    /// route)` pair present, in (local A, shipped A, class B) order.
    #[must_use]
    pub fn response_by_class_route(&self) -> Vec<((TxnClass, Route), LogHistogram)> {
        let mut out: Vec<((TxnClass, Route), LogHistogram)> = Vec::new();
        for kind in 0..KINDS_PER_SITE {
            let key = key_of(kind, 0);
            let mut merged: Option<LogHistogram> = None;
            for (k, h) in &self.response {
                if k.class == key.class && k.route == key.route {
                    match &mut merged {
                        Some(m) => m.merge(h),
                        None => merged = Some(h.clone()),
                    }
                }
            }
            if let Some(m) = merged {
                out.push(((key.class, key.route), m));
            }
        }
        out
    }
}

/// In-run metrics collector. Observations before the warm-up boundary are
/// discarded.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    warmup: SimTime,
    rt_all: BatchMeans,
    rt_hist: Histogram,
    rt_local_a: Accumulator,
    rt_shipped_a: Accumulator,
    rt_class_b: Accumulator,
    rt_outage: Accumulator,
    reruns: Accumulator,
    lock_wait: Accumulator,
    arrivals: u64,
    routed_local_a: u64,
    routed_shipped_a: u64,
    pub(crate) aborts: AbortCounts,
    avail: AvailabilityMetrics,
    obs: Option<ObsHists>,
}

impl MetricsCollector {
    /// Creates a collector that starts measuring at `warmup`.
    #[must_use]
    pub fn new(warmup: SimTime) -> Self {
        MetricsCollector {
            warmup,
            rt_all: BatchMeans::new(200),
            rt_hist: Histogram::new(0.05, 2000), // 0..100 s in 50 ms bins
            rt_local_a: Accumulator::new(),
            rt_shipped_a: Accumulator::new(),
            rt_class_b: Accumulator::new(),
            rt_outage: Accumulator::new(),
            reruns: Accumulator::new(),
            lock_wait: Accumulator::new(),
            arrivals: 0,
            routed_local_a: 0,
            routed_shipped_a: 0,
            aborts: AbortCounts::default(),
            avail: AvailabilityMetrics::default(),
            obs: None,
        }
    }

    /// Enables per-`(class, route, site)` and per-phase response-time
    /// histograms for a system with `n_sites` local sites. All buckets
    /// are allocated here; recording never allocates.
    pub fn enable_histograms(&mut self, n_sites: usize) {
        self.obs = Some(ObsHists::new(n_sites));
    }

    fn measuring(&self, now: SimTime) -> bool {
        now >= self.warmup
    }

    /// Records a transaction arrival.
    pub fn on_arrival(&mut self, now: SimTime) {
        if self.measuring(now) {
            self.arrivals += 1;
        }
    }

    /// Records the routing decision for a class A transaction.
    pub fn on_route_class_a(&mut self, now: SimTime, shipped: bool) {
        if self.measuring(now) {
            if shipped {
                self.routed_shipped_a += 1;
            } else {
                self.routed_local_a += 1;
            }
        }
    }

    fn record_common(
        &mut self,
        site: usize,
        kind: usize,
        rt: SimDuration,
        attempts: u32,
        phases: &PhaseBreakdown,
    ) {
        self.rt_all.record(rt.as_secs());
        self.rt_hist.record(rt.as_secs().min(99.9));
        self.reruns.record(f64::from(attempts));
        self.lock_wait.record(phases.queueing);
        if let Some(obs) = &mut self.obs {
            obs.record(site, kind, rt, phases);
        }
    }

    /// Records completion of a locally run class A transaction
    /// originating at `site`.
    pub fn on_local_a_done(
        &mut self,
        now: SimTime,
        site: usize,
        rt: SimDuration,
        attempts: u32,
        phases: &PhaseBreakdown,
    ) {
        if self.measuring(now) {
            self.record_common(
                site,
                kind_of(TxnClass::A, Route::Local),
                rt,
                attempts,
                phases,
            );
            self.rt_local_a.record(rt.as_secs());
        }
    }

    /// Records completion of a shipped class A transaction originating
    /// at `site`.
    pub fn on_shipped_a_done(
        &mut self,
        now: SimTime,
        site: usize,
        rt: SimDuration,
        attempts: u32,
        phases: &PhaseBreakdown,
    ) {
        if self.measuring(now) {
            self.record_common(
                site,
                kind_of(TxnClass::A, Route::Central),
                rt,
                attempts,
                phases,
            );
            self.rt_shipped_a.record(rt.as_secs());
        }
    }

    /// Records completion of a class B transaction originating at
    /// `site`.
    pub fn on_class_b_done(
        &mut self,
        now: SimTime,
        site: usize,
        rt: SimDuration,
        attempts: u32,
        phases: &PhaseBreakdown,
    ) {
        if self.measuring(now) {
            self.record_common(
                site,
                kind_of(TxnClass::B, Route::Central),
                rt,
                attempts,
                phases,
            );
            self.rt_class_b.record(rt.as_secs());
        }
    }

    /// Records one deadlock-victim restart backoff delay into the
    /// restart-backoff phase histogram (when histograms are enabled).
    pub fn on_backoff(&mut self, now: SimTime, delay: SimDuration) {
        if self.measuring(now) {
            if let Some(obs) = &mut self.obs {
                obs.phases[4].record(delay.as_secs());
            }
        }
    }

    /// Records an abort, counted only after warm-up.
    pub fn on_abort(&mut self, now: SimTime, f: impl FnOnce(&mut AbortCounts)) {
        if self.measuring(now) {
            f(&mut self.aborts);
        }
    }

    /// Records an availability event (rejection, crash kill, failover,
    /// retry, deferral), counted only after warm-up.
    pub fn on_availability(&mut self, now: SimTime, f: impl FnOnce(&mut AvailabilityMetrics)) {
        if self.measuring(now) {
            f(&mut self.avail);
        }
    }

    /// Records the response time of a completion whose lifetime overlapped
    /// a fault window (in addition to its normal per-class recording).
    pub fn on_outage_response(&mut self, now: SimTime, rt: SimDuration) {
        if self.measuring(now) {
            self.rt_outage.record(rt.as_secs());
        }
    }

    /// Finalizes into run-level metrics over `[warmup, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the warm-up boundary.
    #[must_use]
    pub fn finalize(
        &self,
        end: SimTime,
        rho_local: f64,
        rho_central: f64,
        messages: u64,
        downtime_secs: f64,
        profile: Option<ProfileReport>,
    ) -> RunMetrics {
        let window = (end - self.warmup).as_secs();
        assert!(window > 0.0, "measurement window is empty");
        let completions = self.rt_all.count();
        let routed_a = self.routed_local_a + self.routed_shipped_a;
        let availability = AvailabilityMetrics {
            downtime_secs,
            mean_response_during_outage: mean_of(&self.rt_outage),
            ..self.avail
        };
        let obs = if self.obs.is_some() || profile.is_some() {
            let mut report = ObsReport {
                profile: profile.unwrap_or_default(),
                ..ObsReport::default()
            };
            if let Some(hists) = &self.obs {
                for site in 0..hists.n_sites {
                    for kind in 0..KINDS_PER_SITE {
                        let h = &hists.response[site * KINDS_PER_SITE + kind];
                        if !h.is_empty() {
                            report.response.push((key_of(kind, site), h.clone()));
                        }
                    }
                }
                for (name, h) in PHASE_NAMES.iter().zip(&hists.phases) {
                    if !h.is_empty() {
                        report.phases.push((name, h.clone()));
                    }
                }
            }
            Some(report)
        } else {
            None
        };
        RunMetrics {
            window_secs: window,
            arrivals: self.arrivals,
            completions,
            throughput: completions as f64 / window,
            mean_response: self.rt_all.mean(),
            response_ci95: self.rt_all.confidence_interval_95(),
            p95_response: self.rt_hist.quantile(0.95),
            mean_response_local_a: mean_of(&self.rt_local_a),
            mean_response_shipped_a: mean_of(&self.rt_shipped_a),
            mean_response_class_b: mean_of(&self.rt_class_b),
            shipped_fraction: if routed_a == 0 {
                0.0
            } else {
                self.routed_shipped_a as f64 / routed_a as f64
            },
            mean_reruns: self.reruns.mean(),
            mean_lock_wait: self.lock_wait.mean(),
            aborts: self.aborts,
            rho_local,
            rho_central,
            messages,
            messages_by_kind: Vec::new(),
            availability,
            obs,
            scale: None,
            placement: None,
        }
    }
}

impl MetricsCollector {
    /// Replays one journaled recording call.
    ///
    /// Applying a worker journal in the globally merged (serial) event
    /// order reproduces the serial collector bit-for-bit: warm-up gating
    /// and floating-point accumulation both happen here, not at journal
    /// time.
    pub(crate) fn apply(&mut self, op: &MetricsOp) {
        match op {
            MetricsOp::Arrival(t) => self.on_arrival(*t),
            MetricsOp::RouteClassA(t, shipped) => self.on_route_class_a(*t, *shipped),
            MetricsOp::LocalADone(t, site, rt, attempts, phases) => {
                self.on_local_a_done(*t, *site, *rt, *attempts, phases);
            }
            MetricsOp::ShippedADone(t, site, rt, attempts, phases) => {
                self.on_shipped_a_done(*t, *site, *rt, *attempts, phases);
            }
            MetricsOp::ClassBDone(t, site, rt, attempts, phases) => {
                self.on_class_b_done(*t, *site, *rt, *attempts, phases);
            }
            MetricsOp::Backoff(t, delay) => self.on_backoff(*t, *delay),
            MetricsOp::Abort(t, delta) => self.on_abort(*t, |a| a.absorb(delta)),
            MetricsOp::Availability(t, delta) => self.on_availability(*t, |a| a.absorb(delta)),
            MetricsOp::OutageResponse(t, rt) => self.on_outage_response(*t, *rt),
        }
    }
}

/// One recorded metrics call. The speculative executor's partition workers
/// journal these instead of mutating a collector, and the window-commit
/// step replays them into the driver's [`MetricsCollector`] in the exact
/// order the serial loop would have issued them.
#[derive(Debug, Clone)]
pub(crate) enum MetricsOp {
    /// [`MetricsCollector::on_arrival`].
    Arrival(SimTime),
    /// [`MetricsCollector::on_route_class_a`].
    RouteClassA(SimTime, bool),
    /// [`MetricsCollector::on_local_a_done`].
    LocalADone(SimTime, usize, SimDuration, u32, PhaseBreakdown),
    /// [`MetricsCollector::on_shipped_a_done`].
    ShippedADone(SimTime, usize, SimDuration, u32, PhaseBreakdown),
    /// [`MetricsCollector::on_class_b_done`].
    ClassBDone(SimTime, usize, SimDuration, u32, PhaseBreakdown),
    /// [`MetricsCollector::on_backoff`].
    Backoff(SimTime, SimDuration),
    /// [`MetricsCollector::on_abort`], with the closure's effect captured
    /// as a counter delta.
    Abort(SimTime, AbortCounts),
    /// [`MetricsCollector::on_availability`], delta-captured likewise.
    Availability(SimTime, AvailabilityMetrics),
    /// [`MetricsCollector::on_outage_response`].
    OutageResponse(SimTime, SimDuration),
}

/// Where a [`HybridSystem`](crate::HybridSystem)'s measurements go.
///
/// The serial loop records directly into a collector. Speculative
/// partition workers journal ops instead, because floating-point
/// accumulators are order-sensitive: only the window-commit replay, which
/// knows the global serial order, may touch the real collector.
// The collector is large, but boxing it would cost an indirection on
// every metrics call in the serial hot loop; the enum lives once per
// `HybridSystem`, not per event.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum MetricsSink {
    /// Record straight into the collector (serial execution).
    Direct(MetricsCollector),
    /// Append ops for deterministic replay (speculative worker).
    Journal(Vec<MetricsOp>),
}

impl MetricsSink {
    /// See [`MetricsCollector::on_arrival`].
    pub(crate) fn on_arrival(&mut self, now: SimTime) {
        match self {
            MetricsSink::Direct(c) => c.on_arrival(now),
            MetricsSink::Journal(ops) => ops.push(MetricsOp::Arrival(now)),
        }
    }

    /// See [`MetricsCollector::on_route_class_a`].
    pub(crate) fn on_route_class_a(&mut self, now: SimTime, shipped: bool) {
        match self {
            MetricsSink::Direct(c) => c.on_route_class_a(now, shipped),
            MetricsSink::Journal(ops) => ops.push(MetricsOp::RouteClassA(now, shipped)),
        }
    }

    /// See [`MetricsCollector::on_local_a_done`].
    pub(crate) fn on_local_a_done(
        &mut self,
        now: SimTime,
        site: usize,
        rt: SimDuration,
        attempts: u32,
        phases: &PhaseBreakdown,
    ) {
        match self {
            MetricsSink::Direct(c) => c.on_local_a_done(now, site, rt, attempts, phases),
            MetricsSink::Journal(ops) => {
                ops.push(MetricsOp::LocalADone(now, site, rt, attempts, *phases));
            }
        }
    }

    /// See [`MetricsCollector::on_shipped_a_done`].
    pub(crate) fn on_shipped_a_done(
        &mut self,
        now: SimTime,
        site: usize,
        rt: SimDuration,
        attempts: u32,
        phases: &PhaseBreakdown,
    ) {
        match self {
            MetricsSink::Direct(c) => c.on_shipped_a_done(now, site, rt, attempts, phases),
            MetricsSink::Journal(ops) => {
                ops.push(MetricsOp::ShippedADone(now, site, rt, attempts, *phases));
            }
        }
    }

    /// See [`MetricsCollector::on_class_b_done`].
    pub(crate) fn on_class_b_done(
        &mut self,
        now: SimTime,
        site: usize,
        rt: SimDuration,
        attempts: u32,
        phases: &PhaseBreakdown,
    ) {
        match self {
            MetricsSink::Direct(c) => c.on_class_b_done(now, site, rt, attempts, phases),
            MetricsSink::Journal(ops) => {
                ops.push(MetricsOp::ClassBDone(now, site, rt, attempts, *phases));
            }
        }
    }

    /// See [`MetricsCollector::on_backoff`].
    pub(crate) fn on_backoff(&mut self, now: SimTime, delay: SimDuration) {
        match self {
            MetricsSink::Direct(c) => c.on_backoff(now, delay),
            MetricsSink::Journal(ops) => ops.push(MetricsOp::Backoff(now, delay)),
        }
    }

    /// See [`MetricsCollector::on_abort`]. A journal captures the
    /// closure's effect on zeroed counters as a delta.
    pub(crate) fn on_abort(&mut self, now: SimTime, f: impl FnOnce(&mut AbortCounts)) {
        match self {
            MetricsSink::Direct(c) => c.on_abort(now, f),
            MetricsSink::Journal(ops) => {
                let mut delta = AbortCounts::default();
                f(&mut delta);
                ops.push(MetricsOp::Abort(now, delta));
            }
        }
    }

    /// See [`MetricsCollector::on_availability`], delta-captured likewise.
    pub(crate) fn on_availability(
        &mut self,
        now: SimTime,
        f: impl FnOnce(&mut AvailabilityMetrics),
    ) {
        match self {
            MetricsSink::Direct(c) => c.on_availability(now, f),
            MetricsSink::Journal(ops) => {
                let mut delta = AvailabilityMetrics::default();
                f(&mut delta);
                ops.push(MetricsOp::Availability(now, delta));
            }
        }
    }

    /// See [`MetricsCollector::on_outage_response`].
    pub(crate) fn on_outage_response(&mut self, now: SimTime, rt: SimDuration) {
        match self {
            MetricsSink::Direct(c) => c.on_outage_response(now, rt),
            MetricsSink::Journal(ops) => ops.push(MetricsOp::OutageResponse(now, rt)),
        }
    }

    /// See [`MetricsCollector::finalize`].
    ///
    /// # Panics
    ///
    /// Panics on a journal: workers have no totals of their own — the
    /// driver replays their ops and finalizes its direct collector.
    #[must_use]
    pub(crate) fn finalize(
        &self,
        end: SimTime,
        rho_local: f64,
        rho_central: f64,
        messages: u64,
        downtime_secs: f64,
        profile: Option<ProfileReport>,
    ) -> RunMetrics {
        match self {
            MetricsSink::Direct(c) => c.finalize(
                end,
                rho_local,
                rho_central,
                messages,
                downtime_secs,
                profile,
            ),
            MetricsSink::Journal(_) => {
                panic!("a journaling metrics sink has no totals to finalize")
            }
        }
    }

    /// Number of ops journaled so far (0 for a direct sink) — used by
    /// workers to delimit per-event op ranges.
    pub(crate) fn ops_len(&self) -> usize {
        match self {
            MetricsSink::Direct(_) => 0,
            MetricsSink::Journal(ops) => ops.len(),
        }
    }

    /// Takes the journaled ops, leaving the journal empty.
    ///
    /// # Panics
    ///
    /// Panics on a direct sink.
    pub(crate) fn take_ops(&mut self) -> Vec<MetricsOp> {
        match self {
            MetricsSink::Direct(_) => panic!("a direct metrics sink has no journal"),
            MetricsSink::Journal(ops) => std::mem::take(ops),
        }
    }
}

fn mean_of(acc: &Accumulator) -> Option<f64> {
    (acc.count() > 0).then(|| acc.mean())
}

/// Topology-scaling measurements attached to [`RunMetrics`] when
/// `SystemConfig::scale_metrics` is enabled.
///
/// The bytes figures are estimates computed from the dense hot-structure
/// capacities (transaction slab, job slab, per-replica stores and lock
/// tables) at run end — the resident simulator state, not the process
/// RSS.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Number of distributed sites simulated.
    pub n_sites: usize,
    /// Number of central shards (1 = the classic single complex).
    pub n_shards: usize,
    /// Peak simultaneous in-flight transactions over the whole run.
    pub peak_in_flight: u64,
    /// Estimated resident simulator state at run end, bytes.
    pub state_bytes: u64,
    /// `state_bytes` divided by the peak in-flight population — the
    /// marginal memory cost of one more concurrent transaction.
    pub bytes_per_txn: f64,
    /// Messages carried by the shard interconnect (0 when `n_shards` = 1).
    pub cross_shard_messages: u64,
    /// Cross-shard lock requests denied under the no-wait rule (each
    /// denial aborts and reruns the requester).
    pub cross_shard_denials: u64,
    /// Cross-shard lock requests granted by a foreign shard.
    pub remote_lock_grants: u64,
}

/// Adaptive-placement measurements attached to [`RunMetrics`] when the
/// placement runtime is active (an adaptive `PlacementPolicy`, or any
/// workload drift).
///
/// The class-B rates compare admission-time classification under the
/// **live** placement map against the counterfactual epoch-0 (static)
/// map over the same post-warmup admission stream, so
/// `class_b_rate_static − class_b_rate` is exactly the class-B traffic
/// the migrations recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementReport {
    /// Placement policy label (`"static"`, `"threshold"`, `"epoch"`).
    pub policy: String,
    /// Final placement-map epoch (0 = the map never moved).
    pub epoch: u64,
    /// Migrations started by the planner.
    pub migrations_planned: u64,
    /// Migrations that reached atomic switchover.
    pub migrations_completed: u64,
    /// Migrations aborted by site or central failures.
    pub migrations_aborted: u64,
    /// Bulk-copy bytes moved by completed and in-flight migrations.
    pub bytes_moved: u64,
    /// Transactions parked while their partition was draining.
    pub parked_admissions: u64,
    /// Post-warmup admissions classified class A under the live map.
    pub class_a_admitted: u64,
    /// Post-warmup admissions classified class B under the live map.
    pub class_b_admitted: u64,
    /// Fraction of post-warmup admissions that were class B under the
    /// live placement map.
    pub class_b_rate: f64,
    /// Fraction of the same admissions that would have been class B
    /// under the frozen epoch-0 map.
    pub class_b_rate_static: f64,
}

/// Results of one simulation run, measured after warm-up.
#[derive(Clone, PartialEq)]
pub struct RunMetrics {
    /// Measurement window length, seconds.
    pub window_secs: f64,
    /// Arrivals during the window.
    pub arrivals: u64,
    /// Completions during the window.
    pub completions: u64,
    /// Completions per second.
    pub throughput: f64,
    /// Mean response time over all transactions (class A and B), seconds.
    pub mean_response: f64,
    /// 95% confidence interval for the mean response (batch means).
    pub response_ci95: Option<(f64, f64)>,
    /// 95th-percentile response time.
    pub p95_response: Option<f64>,
    /// Mean response of locally run class A transactions.
    pub mean_response_local_a: Option<f64>,
    /// Mean response of shipped class A transactions.
    pub mean_response_shipped_a: Option<f64>,
    /// Mean response of class B transactions.
    pub mean_response_class_b: Option<f64>,
    /// Fraction of class A transactions shipped to the central site.
    pub shipped_fraction: f64,
    /// Mean number of re-runs per completed transaction.
    pub mean_reruns: f64,
    /// Mean time a transaction spent blocked on locks, seconds — the
    /// "wait time for locks" term of the paper's response decomposition.
    pub mean_lock_wait: f64,
    /// Abort counters.
    pub aborts: AbortCounts,
    /// Mean local-site CPU utilization over the window.
    pub rho_local: f64,
    /// Central CPU utilization over the window.
    pub rho_central: f64,
    /// Network messages sent during the whole run.
    pub messages: u64,
    /// Message counts by protocol-message kind (sorted by kind name).
    pub messages_by_kind: Vec<(String, u64)>,
    /// Fault-injection availability counters (all zero without faults).
    pub availability: AvailabilityMetrics,
    /// Observability report: response-time and phase histograms plus the
    /// profile table. `None` unless enabled via `ObsConfig` — and
    /// excluded by construction from the simulated outcome, so two runs
    /// differing only in observability agree on every other field.
    pub obs: Option<ObsReport>,
    /// Topology-scaling report. `None` unless
    /// `SystemConfig::scale_metrics` is set; like `obs`, it is excluded by
    /// construction from the simulated outcome.
    pub scale: Option<ScaleReport>,
    /// Adaptive-placement report. `None` unless the placement runtime
    /// was active (adaptive policy or workload drift) — the default
    /// static configuration renders without it, keeping the golden
    /// text stable.
    pub placement: Option<PlacementReport>,
}

// Hand-written so the rendering with `scale: None` is byte-identical to
// the pre-sharding derived output: the golden-metrics harness pins the
// full `{:#?}` text of RunMetrics, and the `scale` field only appears in
// it when a run opted into scale_metrics.
impl fmt::Debug for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("RunMetrics");
        s.field("window_secs", &self.window_secs)
            .field("arrivals", &self.arrivals)
            .field("completions", &self.completions)
            .field("throughput", &self.throughput)
            .field("mean_response", &self.mean_response)
            .field("response_ci95", &self.response_ci95)
            .field("p95_response", &self.p95_response)
            .field("mean_response_local_a", &self.mean_response_local_a)
            .field("mean_response_shipped_a", &self.mean_response_shipped_a)
            .field("mean_response_class_b", &self.mean_response_class_b)
            .field("shipped_fraction", &self.shipped_fraction)
            .field("mean_reruns", &self.mean_reruns)
            .field("mean_lock_wait", &self.mean_lock_wait)
            .field("aborts", &self.aborts)
            .field("rho_local", &self.rho_local)
            .field("rho_central", &self.rho_central)
            .field("messages", &self.messages)
            .field("messages_by_kind", &self.messages_by_kind)
            .field("availability", &self.availability)
            .field("obs", &self.obs);
        if self.scale.is_some() {
            s.field("scale", &self.scale);
        }
        if self.placement.is_some() {
            s.field("placement", &self.placement);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }
    fn d(secs: f64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    fn wait(queueing: f64) -> PhaseBreakdown {
        PhaseBreakdown {
            queueing,
            ..PhaseBreakdown::default()
        }
    }

    #[test]
    fn warmup_observations_are_discarded() {
        let mut m = MetricsCollector::new(t(10.0));
        m.on_arrival(t(5.0));
        m.on_local_a_done(t(5.0), 0, d(1.0), 0, &wait(0.0));
        m.on_route_class_a(t(5.0), true);
        m.on_abort(t(5.0), |a| a.deadlock_local += 1);
        m.on_availability(t(5.0), |a| a.rejected_class_b += 1);
        m.on_outage_response(t(5.0), d(1.0));
        let r = m.finalize(t(20.0), 0.5, 0.2, 7, 0.0, None);
        assert_eq!(r.arrivals, 0);
        assert_eq!(r.completions, 0);
        assert_eq!(r.shipped_fraction, 0.0);
        assert_eq!(r.aborts.total(), 0);
        assert_eq!(r.availability, AvailabilityMetrics::default());
        assert_eq!(r.obs, None);
    }

    #[test]
    fn post_warmup_observations_are_counted() {
        let mut m = MetricsCollector::new(t(10.0));
        m.on_arrival(t(11.0));
        m.on_arrival(t(12.0));
        m.on_route_class_a(t(11.0), false);
        m.on_route_class_a(t(12.0), true);
        m.on_local_a_done(t(13.0), 0, d(2.0), 0, &wait(0.25));
        m.on_shipped_a_done(t(14.0), 1, d(4.0), 1, &wait(0.75));
        let r = m.finalize(t(20.0), 0.5, 0.2, 7, 0.0, None);
        assert_eq!(r.arrivals, 2);
        assert_eq!(r.completions, 2);
        assert_eq!(r.mean_response, 3.0);
        assert_eq!(r.shipped_fraction, 0.5);
        assert_eq!(r.mean_response_local_a, Some(2.0));
        assert_eq!(r.mean_response_shipped_a, Some(4.0));
        assert_eq!(r.mean_response_class_b, None);
        assert_eq!(r.throughput, 0.2);
        assert_eq!(r.mean_reruns, 0.5);
        assert_eq!(r.mean_lock_wait, 0.5);
        assert_eq!(r.messages, 7);
    }

    #[test]
    fn abort_totals_add_up() {
        let a = AbortCounts {
            local_invalidated: 1,
            central_invalidated: 2,
            central_neg_ack: 3,
            deadlock_local: 4,
            deadlock_central: 5,
        };
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn availability_counters_survive_finalize() {
        let mut m = MetricsCollector::new(t(10.0));
        m.on_availability(t(11.0), |a| {
            a.rejected_class_a += 2;
            a.crash_aborts_site += 1;
            a.failover_shipped += 3;
        });
        m.on_outage_response(t(12.0), d(4.0));
        m.on_outage_response(t(13.0), d(6.0));
        let r = m.finalize(t(20.0), 0.5, 0.2, 7, 2.5, None);
        assert_eq!(r.availability.rejected_class_a, 2);
        assert_eq!(r.availability.crash_aborts_site, 1);
        assert_eq!(r.availability.failover_shipped, 3);
        assert_eq!(r.availability.downtime_secs, 2.5);
        assert_eq!(r.availability.mean_response_during_outage, Some(5.0));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn empty_window_panics() {
        let m = MetricsCollector::new(t(10.0));
        let _ = m.finalize(t(10.0), 0.0, 0.0, 0, 0.0, None);
    }

    #[test]
    fn histograms_key_by_class_route_site_and_phase() {
        let mut m = MetricsCollector::new(t(10.0));
        m.enable_histograms(2);
        let b = PhaseBreakdown {
            queueing: 0.5,
            execution: 1.0,
            commit: 0.25,
            authentication: 0.25,
            restart_backoff: 0.0,
        };
        m.on_local_a_done(t(11.0), 0, d(2.0), 0, &wait(0.5));
        m.on_shipped_a_done(t(12.0), 1, d(2.0), 1, &b);
        m.on_class_b_done(t(13.0), 1, d(3.0), 0, &b);
        m.on_backoff(t(14.0), d(0.125));
        let r = m.finalize(t(20.0), 0.5, 0.2, 0, 0.0, None);
        let obs = r.obs.expect("histograms enabled");
        // Three non-empty keys: (A, Local, 0), (A, Central, 1), (B, Central, 1).
        assert_eq!(obs.response.len(), 3);
        assert_eq!(
            obs.response[0].0,
            ResponseKey {
                class: TxnClass::A,
                route: Route::Local,
                site: 0
            }
        );
        assert!(obs.response.iter().all(|(_, h)| h.count() == 1));
        // All five phases present: auth recorded for the two central
        // completions, backoff recorded once from on_backoff.
        assert_eq!(obs.phases.len(), PHASE_NAMES.len());
        let phase = |name: &str| {
            obs.phases
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, h)| h)
                .unwrap()
        };
        assert_eq!(phase("queueing").count(), 3);
        assert_eq!(phase("authentication").count(), 2);
        assert_eq!(phase("restart_backoff").count(), 1);
        assert_eq!(phase("restart_backoff").sum(), 0.125);
        // Aggregation over sites preserves per-(class, route) counts.
        let by_cr = obs.response_by_class_route();
        assert_eq!(by_cr.len(), 3);
        assert!(by_cr.iter().all(|(_, h)| h.count() == 1));
    }

    #[test]
    fn journal_replay_matches_direct_recording_exactly() {
        let record = |sink: &mut MetricsSink| {
            sink.on_arrival(t(11.0));
            sink.on_route_class_a(t(11.0), true);
            sink.on_local_a_done(t(13.0), 0, d(2.0), 1, &wait(0.25));
            sink.on_shipped_a_done(t(14.0), 1, d(4.0), 0, &wait(0.75));
            sink.on_class_b_done(t(15.0), 1, d(3.0), 2, &wait(0.5));
            sink.on_backoff(t(15.5), d(0.125));
            sink.on_abort(t(16.0), |a| a.deadlock_central += 1);
            sink.on_availability(t(17.0), |a| a.retries += 2);
            sink.on_outage_response(t(17.0), d(6.0));
            // Pre-warm-up calls must be journaled too: gating happens at
            // replay time, exactly as the direct path gates at call time.
            sink.on_arrival(t(5.0));
        };

        let mut direct = MetricsSink::Direct(MetricsCollector::new(t(10.0)));
        record(&mut direct);

        let mut journal = MetricsSink::Journal(Vec::new());
        record(&mut journal);
        assert_eq!(journal.ops_len(), 10);
        let mut replayed = MetricsCollector::new(t(10.0));
        for op in journal.take_ops() {
            replayed.apply(&op);
        }
        assert_eq!(journal.ops_len(), 0);

        let a = direct.finalize(t(20.0), 0.5, 0.2, 7, 0.0, None);
        let b = replayed.finalize(t(20.0), 0.5, 0.2, 7, 0.0, None);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.arrivals, 1);
        assert_eq!(a.aborts.deadlock_central, 1);
        assert_eq!(a.availability.retries, 2);
    }

    #[test]
    fn scale_report_is_invisible_until_populated() {
        // The golden harness pins the full Debug text, so `scale: None`
        // must leave the rendering exactly as it was before sharding.
        let mut m = MetricsCollector::new(t(0.0));
        m.on_arrival(t(1.0));
        let mut r = m.finalize(t(10.0), 0.1, 0.1, 0, 0.0, None);
        assert_eq!(r.scale, None);
        let before = format!("{r:#?}");
        assert!(!before.contains("scale"), "{before}");
        assert!(before.trim_end().ends_with('}'));
        r.scale = Some(ScaleReport {
            n_sites: 100,
            n_shards: 4,
            peak_in_flight: 250,
            state_bytes: 1 << 20,
            bytes_per_txn: 4194.3,
            cross_shard_messages: 12,
            cross_shard_denials: 1,
            remote_lock_grants: 9,
        });
        let after = format!("{r:#?}");
        assert!(after.contains("scale: Some("), "{after}");
        assert!(after.contains("n_shards: 4"), "{after}");
        // Everything before the scale field is unchanged.
        assert!(after.starts_with(before.trim_end_matches(['}', '\n', ' '])));
    }

    #[test]
    fn placement_report_is_invisible_until_populated() {
        // Same contract as `scale`: the golden harness pins the full
        // Debug text, so `placement: None` must not render at all.
        let mut m = MetricsCollector::new(t(0.0));
        m.on_arrival(t(1.0));
        let mut r = m.finalize(t(10.0), 0.1, 0.1, 0, 0.0, None);
        assert_eq!(r.placement, None);
        let before = format!("{r:#?}");
        assert!(!before.contains("placement"), "{before}");
        r.placement = Some(PlacementReport {
            policy: "threshold".into(),
            epoch: 3,
            migrations_planned: 4,
            migrations_completed: 3,
            migrations_aborted: 1,
            bytes_moved: 1 << 18,
            parked_admissions: 7,
            class_a_admitted: 900,
            class_b_admitted: 100,
            class_b_rate: 0.1,
            class_b_rate_static: 0.25,
        });
        let after = format!("{r:#?}");
        assert!(after.contains("placement: Some("), "{after}");
        assert!(after.contains("migrations_completed: 3"), "{after}");
        assert!(after.starts_with(before.trim_end_matches(['}', '\n', ' '])));
    }

    #[test]
    fn obs_reports_merge_across_runs() {
        let run = |site: usize| {
            let mut m = MetricsCollector::new(t(0.0));
            m.enable_histograms(2);
            m.on_local_a_done(t(1.0), site, d(1.0 + site as f64), 0, &wait(0.0));
            m.finalize(t(10.0), 0.0, 0.0, 0, 0.0, None)
        };
        let runs = [run(0), run(1), run(0)];
        let merged = ObsReport::merged_from_runs(runs.iter()).unwrap();
        assert_eq!(merged.response.len(), 2);
        let total: u64 = merged.response.iter().map(|(_, h)| h.count()).sum();
        assert_eq!(total, 3);
        let by_cr = merged.response_by_class_route();
        assert_eq!(by_cr.len(), 1);
        assert_eq!(by_cr[0].1.count(), 3);
        assert_eq!(by_cr[0].1.min(), Some(1.0));
        assert_eq!(by_cr[0].1.max(), Some(2.0));
    }
}
