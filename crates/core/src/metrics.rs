//! Measurement collection and run-level results.

use hls_sim::{Accumulator, BatchMeans, Histogram, SimDuration, SimTime};

/// Abort counters, by victim and cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbortCounts {
    /// Local class A transactions aborted by a committed shipped/central
    /// transaction's authentication phase.
    pub local_invalidated: u64,
    /// Central transactions aborted because an asynchronous update
    /// invalidated a lock they held.
    pub central_invalidated: u64,
    /// Central transactions re-executed after a coherence-count negative
    /// acknowledgement in the authentication phase.
    pub central_neg_ack: u64,
    /// Local transactions aborted to break a deadlock.
    pub deadlock_local: u64,
    /// Central transactions aborted to break a deadlock.
    pub deadlock_central: u64,
}

impl AbortCounts {
    /// Total aborts of all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.local_invalidated
            + self.central_invalidated
            + self.central_neg_ack
            + self.deadlock_local
            + self.deadlock_central
    }
}

/// Availability counters produced by the fault-injection layer.
///
/// Every field is exactly zero (and the outage mean absent) when the fault
/// schedule is empty, so fault-free runs are unchanged by this machinery.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AvailabilityMetrics {
    /// Class A arrivals turned away because the components they needed
    /// were down.
    pub rejected_class_a: u64,
    /// Class B arrivals turned away (after exhausting retries, if
    /// failure-aware).
    pub rejected_class_b: u64,
    /// Transactions killed by a local-site crash.
    pub crash_aborts_site: u64,
    /// Transactions killed by a central-complex crash.
    pub crash_aborts_central: u64,
    /// Class A arrivals shipped centrally because their site was down.
    pub failover_shipped: u64,
    /// Class A arrivals forced local because the central complex was
    /// unreachable.
    pub failover_local: u64,
    /// Class B retry attempts scheduled while the central complex was
    /// unreachable.
    pub retries: u64,
    /// Messages held in store-and-forward buffers by link/endpoint
    /// failures (each message counted once per deferral).
    pub deferred_messages: u64,
    /// Summed component downtime (site + central outages) overlapping the
    /// measurement window, seconds.
    pub downtime_secs: f64,
    /// Mean response time of transactions whose lifetime overlapped a
    /// fault window — the downtime-weighted counterpart of
    /// [`RunMetrics::mean_response`].
    pub mean_response_during_outage: Option<f64>,
}

/// In-run metrics collector. Observations before the warm-up boundary are
/// discarded.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    warmup: SimTime,
    rt_all: BatchMeans,
    rt_hist: Histogram,
    rt_local_a: Accumulator,
    rt_shipped_a: Accumulator,
    rt_class_b: Accumulator,
    rt_outage: Accumulator,
    reruns: Accumulator,
    lock_wait: Accumulator,
    arrivals: u64,
    routed_local_a: u64,
    routed_shipped_a: u64,
    pub(crate) aborts: AbortCounts,
    avail: AvailabilityMetrics,
}

impl MetricsCollector {
    /// Creates a collector that starts measuring at `warmup`.
    #[must_use]
    pub fn new(warmup: SimTime) -> Self {
        MetricsCollector {
            warmup,
            rt_all: BatchMeans::new(200),
            rt_hist: Histogram::new(0.05, 2000), // 0..100 s in 50 ms bins
            rt_local_a: Accumulator::new(),
            rt_shipped_a: Accumulator::new(),
            rt_class_b: Accumulator::new(),
            rt_outage: Accumulator::new(),
            reruns: Accumulator::new(),
            lock_wait: Accumulator::new(),
            arrivals: 0,
            routed_local_a: 0,
            routed_shipped_a: 0,
            aborts: AbortCounts::default(),
            avail: AvailabilityMetrics::default(),
        }
    }

    fn measuring(&self, now: SimTime) -> bool {
        now >= self.warmup
    }

    /// Records a transaction arrival.
    pub fn on_arrival(&mut self, now: SimTime) {
        if self.measuring(now) {
            self.arrivals += 1;
        }
    }

    /// Records the routing decision for a class A transaction.
    pub fn on_route_class_a(&mut self, now: SimTime, shipped: bool) {
        if self.measuring(now) {
            if shipped {
                self.routed_shipped_a += 1;
            } else {
                self.routed_local_a += 1;
            }
        }
    }

    fn record_common(&mut self, now: SimTime, rt: SimDuration, attempts: u32, lock_wait: f64) {
        self.rt_all.record(rt.as_secs());
        self.rt_hist.record(rt.as_secs().min(99.9));
        self.reruns.record(f64::from(attempts));
        self.lock_wait.record(lock_wait);
        let _ = now;
    }

    /// Records completion of a locally run class A transaction.
    pub fn on_local_a_done(
        &mut self,
        now: SimTime,
        rt: SimDuration,
        attempts: u32,
        lock_wait: f64,
    ) {
        if self.measuring(now) {
            self.record_common(now, rt, attempts, lock_wait);
            self.rt_local_a.record(rt.as_secs());
        }
    }

    /// Records completion of a shipped class A transaction.
    pub fn on_shipped_a_done(
        &mut self,
        now: SimTime,
        rt: SimDuration,
        attempts: u32,
        lock_wait: f64,
    ) {
        if self.measuring(now) {
            self.record_common(now, rt, attempts, lock_wait);
            self.rt_shipped_a.record(rt.as_secs());
        }
    }

    /// Records completion of a class B transaction.
    pub fn on_class_b_done(
        &mut self,
        now: SimTime,
        rt: SimDuration,
        attempts: u32,
        lock_wait: f64,
    ) {
        if self.measuring(now) {
            self.record_common(now, rt, attempts, lock_wait);
            self.rt_class_b.record(rt.as_secs());
        }
    }

    /// Records an abort, counted only after warm-up.
    pub fn on_abort(&mut self, now: SimTime, f: impl FnOnce(&mut AbortCounts)) {
        if self.measuring(now) {
            f(&mut self.aborts);
        }
    }

    /// Records an availability event (rejection, crash kill, failover,
    /// retry, deferral), counted only after warm-up.
    pub fn on_availability(&mut self, now: SimTime, f: impl FnOnce(&mut AvailabilityMetrics)) {
        if self.measuring(now) {
            f(&mut self.avail);
        }
    }

    /// Records the response time of a completion whose lifetime overlapped
    /// a fault window (in addition to its normal per-class recording).
    pub fn on_outage_response(&mut self, now: SimTime, rt: SimDuration) {
        if self.measuring(now) {
            self.rt_outage.record(rt.as_secs());
        }
    }

    /// Finalizes into run-level metrics over `[warmup, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the warm-up boundary.
    #[must_use]
    pub fn finalize(
        &self,
        end: SimTime,
        rho_local: f64,
        rho_central: f64,
        messages: u64,
        downtime_secs: f64,
    ) -> RunMetrics {
        let window = (end - self.warmup).as_secs();
        assert!(window > 0.0, "measurement window is empty");
        let completions = self.rt_all.count();
        let routed_a = self.routed_local_a + self.routed_shipped_a;
        let availability = AvailabilityMetrics {
            downtime_secs,
            mean_response_during_outage: mean_of(&self.rt_outage),
            ..self.avail
        };
        RunMetrics {
            window_secs: window,
            arrivals: self.arrivals,
            completions,
            throughput: completions as f64 / window,
            mean_response: self.rt_all.mean(),
            response_ci95: self.rt_all.confidence_interval_95(),
            p95_response: self.rt_hist.quantile(0.95),
            mean_response_local_a: mean_of(&self.rt_local_a),
            mean_response_shipped_a: mean_of(&self.rt_shipped_a),
            mean_response_class_b: mean_of(&self.rt_class_b),
            shipped_fraction: if routed_a == 0 {
                0.0
            } else {
                self.routed_shipped_a as f64 / routed_a as f64
            },
            mean_reruns: self.reruns.mean(),
            mean_lock_wait: self.lock_wait.mean(),
            aborts: self.aborts,
            rho_local,
            rho_central,
            messages,
            messages_by_kind: Vec::new(),
            availability,
        }
    }
}

fn mean_of(acc: &Accumulator) -> Option<f64> {
    (acc.count() > 0).then(|| acc.mean())
}

/// Results of one simulation run, measured after warm-up.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Measurement window length, seconds.
    pub window_secs: f64,
    /// Arrivals during the window.
    pub arrivals: u64,
    /// Completions during the window.
    pub completions: u64,
    /// Completions per second.
    pub throughput: f64,
    /// Mean response time over all transactions (class A and B), seconds.
    pub mean_response: f64,
    /// 95% confidence interval for the mean response (batch means).
    pub response_ci95: Option<(f64, f64)>,
    /// 95th-percentile response time.
    pub p95_response: Option<f64>,
    /// Mean response of locally run class A transactions.
    pub mean_response_local_a: Option<f64>,
    /// Mean response of shipped class A transactions.
    pub mean_response_shipped_a: Option<f64>,
    /// Mean response of class B transactions.
    pub mean_response_class_b: Option<f64>,
    /// Fraction of class A transactions shipped to the central site.
    pub shipped_fraction: f64,
    /// Mean number of re-runs per completed transaction.
    pub mean_reruns: f64,
    /// Mean time a transaction spent blocked on locks, seconds — the
    /// "wait time for locks" term of the paper's response decomposition.
    pub mean_lock_wait: f64,
    /// Abort counters.
    pub aborts: AbortCounts,
    /// Mean local-site CPU utilization over the window.
    pub rho_local: f64,
    /// Central CPU utilization over the window.
    pub rho_central: f64,
    /// Network messages sent during the whole run.
    pub messages: u64,
    /// Message counts by protocol-message kind (sorted by kind name).
    pub messages_by_kind: Vec<(String, u64)>,
    /// Fault-injection availability counters (all zero without faults).
    pub availability: AvailabilityMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }
    fn d(secs: f64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn warmup_observations_are_discarded() {
        let mut m = MetricsCollector::new(t(10.0));
        m.on_arrival(t(5.0));
        m.on_local_a_done(t(5.0), d(1.0), 0, 0.0);
        m.on_route_class_a(t(5.0), true);
        m.on_abort(t(5.0), |a| a.deadlock_local += 1);
        m.on_availability(t(5.0), |a| a.rejected_class_b += 1);
        m.on_outage_response(t(5.0), d(1.0));
        let r = m.finalize(t(20.0), 0.5, 0.2, 7, 0.0);
        assert_eq!(r.arrivals, 0);
        assert_eq!(r.completions, 0);
        assert_eq!(r.shipped_fraction, 0.0);
        assert_eq!(r.aborts.total(), 0);
        assert_eq!(r.availability, AvailabilityMetrics::default());
    }

    #[test]
    fn post_warmup_observations_are_counted() {
        let mut m = MetricsCollector::new(t(10.0));
        m.on_arrival(t(11.0));
        m.on_arrival(t(12.0));
        m.on_route_class_a(t(11.0), false);
        m.on_route_class_a(t(12.0), true);
        m.on_local_a_done(t(13.0), d(2.0), 0, 0.25);
        m.on_shipped_a_done(t(14.0), d(4.0), 1, 0.75);
        let r = m.finalize(t(20.0), 0.5, 0.2, 7, 0.0);
        assert_eq!(r.arrivals, 2);
        assert_eq!(r.completions, 2);
        assert_eq!(r.mean_response, 3.0);
        assert_eq!(r.shipped_fraction, 0.5);
        assert_eq!(r.mean_response_local_a, Some(2.0));
        assert_eq!(r.mean_response_shipped_a, Some(4.0));
        assert_eq!(r.mean_response_class_b, None);
        assert_eq!(r.throughput, 0.2);
        assert_eq!(r.mean_reruns, 0.5);
        assert_eq!(r.mean_lock_wait, 0.5);
        assert_eq!(r.messages, 7);
    }

    #[test]
    fn abort_totals_add_up() {
        let a = AbortCounts {
            local_invalidated: 1,
            central_invalidated: 2,
            central_neg_ack: 3,
            deadlock_local: 4,
            deadlock_central: 5,
        };
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn availability_counters_survive_finalize() {
        let mut m = MetricsCollector::new(t(10.0));
        m.on_availability(t(11.0), |a| {
            a.rejected_class_a += 2;
            a.crash_aborts_site += 1;
            a.failover_shipped += 3;
        });
        m.on_outage_response(t(12.0), d(4.0));
        m.on_outage_response(t(13.0), d(6.0));
        let r = m.finalize(t(20.0), 0.5, 0.2, 7, 2.5);
        assert_eq!(r.availability.rejected_class_a, 2);
        assert_eq!(r.availability.crash_aborts_site, 1);
        assert_eq!(r.availability.failover_shipped, 3);
        assert_eq!(r.availability.downtime_secs, 2.5);
        assert_eq!(r.availability.mean_response_during_outage, Some(5.0));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn empty_window_panics() {
        let m = MetricsCollector::new(t(10.0));
        let _ = m.finalize(t(10.0), 0.0, 0.0, 0, 0.0);
    }
}
