//! Tests of the deadlock victim-selection policies under a workload hot
//! enough to form cycles constantly.

use hls_core::{
    run_simulation, DeadlockVictim, HybridSystem, Route, RouterSpec, SystemConfig, TraceEvent,
};

fn hot_cfg(victim: DeadlockVictim) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default()
        .with_total_rate(12.0)
        .with_horizon(100.0, 10.0)
        .with_seed(13);
    // Very hot data: lots of local-local conflicts and cycles.
    cfg.params.lockspace = 1200.0;
    cfg.deadlock_victim = victim;
    cfg
}

#[test]
fn all_policies_complete_work_and_break_cycles() {
    for victim in [
        DeadlockVictim::Requester,
        DeadlockVictim::Youngest,
        DeadlockVictim::FewestLocks,
    ] {
        let m = run_simulation(hot_cfg(victim), RouterSpec::NoSharing).unwrap();
        assert!(
            m.aborts.deadlock_local > 0,
            "{victim:?}: no deadlocks in a hot run"
        );
        assert!(
            m.completions > 500,
            "{victim:?}: only {} completions",
            m.completions
        );
        // Throughput must be sustained: deadlock breaking cannot livelock.
        assert!(
            m.throughput > 7.0,
            "{victim:?}: throughput collapsed to {}",
            m.throughput
        );
    }
}

#[test]
fn policies_select_different_victims() {
    let base = run_simulation(hot_cfg(DeadlockVictim::Requester), RouterSpec::NoSharing).unwrap();
    let youngest =
        run_simulation(hot_cfg(DeadlockVictim::Youngest), RouterSpec::NoSharing).unwrap();
    // Different victims change the downstream schedule.
    assert_ne!(base.mean_response, youngest.mean_response);
}

#[test]
fn traced_victims_are_cycle_members_in_lock_wait() {
    // Every traced deadlock abort must name a transaction that had arrived
    // and not yet completed.
    let (_, trace) = HybridSystem::new(hot_cfg(DeadlockVictim::Youngest), RouterSpec::NoSharing)
        .unwrap()
        .run_traced();
    let mut alive = std::collections::HashSet::new();
    let mut victims = 0;
    for (_, e) in trace.events() {
        match e {
            TraceEvent::Arrival { txn, .. } => {
                alive.insert(*txn);
            }
            TraceEvent::Completion { txn, .. } => {
                alive.remove(txn);
            }
            TraceEvent::DeadlockAbort { txn, route } => {
                assert!(alive.contains(txn), "victim {txn} is not in flight");
                // Class B transactions deadlock among themselves centrally;
                // class A cycles are local.
                assert!(matches!(route, Route::Local | Route::Central));
                victims += 1;
            }
            _ => {}
        }
    }
    assert!(victims > 0);
}

#[test]
fn fewest_locks_policy_loses_less_work() {
    // Aborting the member with the fewest locks should re-run cheaper
    // transactions on average; verify it produces no fewer completions.
    let requester =
        run_simulation(hot_cfg(DeadlockVictim::Requester), RouterSpec::NoSharing).unwrap();
    let fewest =
        run_simulation(hot_cfg(DeadlockVictim::FewestLocks), RouterSpec::NoSharing).unwrap();
    assert!(
        fewest.completions as f64 >= 0.9 * requester.completions as f64,
        "fewest-locks lost throughput: {} vs {}",
        fewest.completions,
        requester.completions
    );
}
