//! Serial-vs-parallel equivalence suite for the experiment engine.
//!
//! The engine's contract is that results depend only on the experiment
//! grid — (base seed, rate index, strategy, replication) — never on the
//! worker-thread count or completion order. These tests pin that contract
//! by comparing bit-identical [`RunMetrics`] (via `PartialEq`) across
//! `--jobs` values and against an explicit serial loop, for every routing
//! policy the paper studies.

use std::num::NonZeroUsize;

use hls_core::{
    derive_seed, replicate_jobs, run_simulation, run_simulation_threads, strategy_tag,
    sweep_rates_jobs, sweep_rates_static_jobs, FaultSchedule, HybridSystem, RouterSpec,
    SystemConfig, TraceEvent, UtilizationEstimator, NO_RATE_INDEX,
};
use hls_sim::SimRng;

/// Every routing policy, including both estimators where they differ.
fn all_specs() -> Vec<RouterSpec> {
    vec![
        RouterSpec::NoSharing,
        RouterSpec::Static { p_ship: 0.3 },
        RouterSpec::MeasuredResponse,
        RouterSpec::QueueLength,
        RouterSpec::UtilizationThreshold { threshold: -0.2 },
        RouterSpec::MinIncoming {
            estimator: UtilizationEstimator::QueueLength,
        },
        RouterSpec::MinIncoming {
            estimator: UtilizationEstimator::NumInSystem,
        },
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::QueueLength,
        },
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
        RouterSpec::SmoothedMinAverage {
            estimator: UtilizationEstimator::NumInSystem,
            scale: 0.2,
        },
    ]
}

/// A short horizon keeps the full policy × jobs matrix fast; equivalence
/// is about scheduling, not statistical quality.
fn quick_config() -> SystemConfig {
    SystemConfig::paper_default()
        .with_total_rate(18.0)
        .with_horizon(30.0, 6.0)
        .with_seed(42)
}

#[test]
fn replicate_is_bit_identical_across_job_counts() {
    let cfg = quick_config();
    for spec in all_specs() {
        let serial = replicate_jobs(&cfg, spec, 4, 1).expect("valid");
        for jobs in [2, 8] {
            let parallel = replicate_jobs(&cfg, spec, 4, jobs).expect("valid");
            assert_eq!(serial, parallel, "{} with jobs={jobs}", spec.label());
        }
    }
}

#[test]
fn sweep_is_bit_identical_across_job_counts() {
    let cfg = quick_config();
    let rates = [10.0, 16.0, 22.0];
    for spec in all_specs() {
        let serial = sweep_rates_jobs(&cfg, spec, &rates, 1).expect("valid");
        for jobs in [2, 8] {
            let parallel = sweep_rates_jobs(&cfg, spec, &rates, jobs).expect("valid");
            assert_eq!(serial, parallel, "{} with jobs={jobs}", spec.label());
        }
    }
}

#[test]
fn static_sweep_is_bit_identical_across_job_counts() {
    let cfg = quick_config();
    let rates = [10.0, 16.0, 22.0];
    let serial = sweep_rates_static_jobs(&cfg, &rates, 1).expect("valid");
    for jobs in [2, 8] {
        let parallel = sweep_rates_static_jobs(&cfg, &rates, jobs).expect("valid");
        assert_eq!(serial, parallel, "static sweep with jobs={jobs}");
    }
}

/// The engine's replication results match a hand-written serial loop
/// using only the public seed-derivation contract — the pool adds
/// nothing but scheduling.
#[test]
fn replicate_matches_explicit_serial_loop() {
    let cfg = quick_config();
    let spec = RouterSpec::MinAverage {
        estimator: UtilizationEstimator::NumInSystem,
    };
    let engine = replicate_jobs(&cfg, spec, 3, 8).expect("valid");
    let by_hand: Vec<_> = (0..3u64)
        .map(|k| {
            let seed = derive_seed(cfg.seed, NO_RATE_INDEX, strategy_tag(&spec), k);
            run_simulation(cfg.clone().with_seed(seed), spec).expect("valid")
        })
        .collect();
    assert_eq!(engine, by_hand);
}

/// The sweep results match per-rate serial calls with grid-derived seeds.
#[test]
fn sweep_matches_explicit_serial_loop() {
    let cfg = quick_config();
    let spec = RouterSpec::QueueLength;
    let rates = [12.0, 20.0];
    let engine = sweep_rates_jobs(&cfg, spec, &rates, 4).expect("valid");
    for (i, point) in engine.iter().enumerate() {
        let seed = derive_seed(cfg.seed, i as u64, strategy_tag(&spec), 0);
        let by_hand = run_simulation(cfg.clone().with_total_rate(rates[i]).with_seed(seed), spec)
            .expect("valid");
        assert_eq!(point.total_rate, rates[i]);
        assert_eq!(point.metrics, by_hand, "rate {}", rates[i]);
    }
}

/// A grid with one invalid cell fails cleanly (no panic, no partial
/// results) with the same error under every job count. The companion
/// lowest-index-wins property is pinned with distinguishable errors in
/// the `try_parallel_map` unit tests.
#[test]
fn error_propagation_is_deterministic_across_job_counts() {
    let cfg = quick_config();
    let rates = [12.0, -1.0, 16.0, 20.0];
    let serial = sweep_rates_jobs(&cfg, RouterSpec::NoSharing, &rates, 1)
        .expect_err("negative rate must fail");
    for jobs in [2, 8] {
        let parallel = sweep_rates_jobs(&cfg, RouterSpec::NoSharing, &rates, jobs)
            .expect_err("negative rate must fail");
        assert_eq!(
            format!("{serial}"),
            format!("{parallel}"),
            "jobs={jobs} surfaced a different error"
        );
    }
}

/// On a machine with ≥ 4 cores, fanning a replication panel across all
/// cores must cut wall-clock time at least in half versus one worker.
/// Skipped (trivially passing) on smaller machines, where the speedup
/// target is unachievable by construction.
#[test]
fn parallel_speedup_on_multicore() {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup check: only {cores} core(s) available");
        return;
    }
    let cfg = SystemConfig::paper_default()
        .with_total_rate(20.0)
        .with_horizon(60.0, 10.0)
        .with_seed(7);
    let spec = RouterSpec::MinAverage {
        estimator: UtilizationEstimator::NumInSystem,
    };
    let reps = 2 * cores as u64;
    // Warm-up run so first-touch effects don't favour either side.
    replicate_jobs(&cfg, spec, cores as u64, 0).expect("valid");
    let t1 = std::time::Instant::now();
    let serial = replicate_jobs(&cfg, spec, reps, 1).expect("valid");
    let serial_elapsed = t1.elapsed();
    let t2 = std::time::Instant::now();
    let parallel = replicate_jobs(&cfg, spec, reps, 0).expect("valid");
    let parallel_elapsed = t2.elapsed();
    assert_eq!(serial, parallel);
    assert!(
        parallel_elapsed.as_secs_f64() <= serial_elapsed.as_secs_f64() / 2.0,
        "expected ≥2x speedup on {cores} cores: serial {serial_elapsed:?}, \
         parallel {parallel_elapsed:?}"
    );
}

/// Distinct grid coordinates never collide on a derived seed — the
/// property that makes "replication k" and "rate i" statistically
/// independent streams. Seeded randomized sweep over many bases plus an
/// exhaustive pass over a full coordinate grid for a handful of bases.
#[test]
fn derived_seeds_are_collision_free() {
    let mut rng = SimRng::seed_from_u64(0xC011_1DE5);
    for _ in 0..64 {
        let base = rng.random::<u64>();
        let mut seen = std::collections::HashMap::new();
        for rate in 0..16u64 {
            for strat in 0..8u64 {
                for rep in 0..16u64 {
                    let seed = derive_seed(base, rate, strat, rep);
                    if let Some(prev) = seen.insert(seed, (rate, strat, rep)) {
                        panic!(
                            "seed collision under base {base:#x}: \
                             {prev:?} and {:?} both map to {seed:#x}",
                            (rate, strat, rep)
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Within-run parallelism: the speculative window executor
// (`--sim-threads`). Its contract is the same as the experiment
// engine's, one level down: bit-identical `RunMetrics` for every
// thread count, including `1` (the untouched serial loop).
// ---------------------------------------------------------------------

/// Shipping-heavy and lock-contended: most class A work runs at the
/// central complex, so authentication seizures displace central
/// transactions and conflict windows actually occur.
fn contended_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default()
        .with_total_rate(20.0)
        .with_horizon(24.0, 4.0)
        .with_seed(7);
    cfg.params.n_sites = 4;
    cfg.params.lockspace = 48.0;
    cfg
}

/// The sim-thread counts the battery exercises, per ISSUE 6.
const SIM_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Bounded replication count for the randomized passes, honoring the
/// conventional `PROPTEST_CASES` override.
fn prop_cases(default: usize) -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn sim_threads_matrix_is_bit_identical_light() {
    let cfg = quick_config();
    for spec in all_specs() {
        let (serial, serial_events) = HybridSystem::new(cfg.clone(), spec)
            .expect("valid")
            .run_counted();
        for threads in SIM_THREADS {
            let (metrics, events) = HybridSystem::new(cfg.clone(), spec)
                .expect("valid")
                .run_counted_threads(threads);
            assert_eq!(serial, metrics, "{} sim-threads={threads}", spec.label());
            assert_eq!(
                serial_events,
                events,
                "{} sim-threads={threads} event count",
                spec.label()
            );
        }
    }
}

#[test]
fn sim_threads_matrix_is_bit_identical_contended() {
    let cfg = contended_config();
    for spec in [
        RouterSpec::Static { p_ship: 0.7 },
        RouterSpec::QueueLength,
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
    ] {
        let (serial, serial_events) = HybridSystem::new(cfg.clone(), spec)
            .expect("valid")
            .run_counted();
        for threads in SIM_THREADS {
            let (metrics, events) = HybridSystem::new(cfg.clone(), spec)
                .expect("valid")
                .run_counted_threads(threads);
            assert_eq!(serial, metrics, "{} sim-threads={threads}", spec.label());
            assert_eq!(
                serial_events,
                events,
                "{} sim-threads={threads}",
                spec.label()
            );
        }
    }
}

/// Heavy contention drives authentication-seizure displacements, yet
/// every fault-free victim is *site-local*: two central transactions
/// whose locksets intersect are serialized by the central lock table,
/// so their site seizure windows can never overlap (the serialization
/// argument in `speculative`'s module docs). The speculative run must
/// therefore stay conflict-free while matching the serial run bit for
/// bit even as displacements abort and re-run transactions inside the
/// windows. (The rollback machinery itself is driven by fabricated
/// displacements in `speculative::tests::injected_conflict_is_repaired`.)
#[test]
fn contended_displacements_stay_partition_local() {
    let cfg = contended_config();
    let spec = RouterSpec::Static { p_ship: 0.9 };
    let mut traced = HybridSystem::new(cfg.clone(), spec).expect("valid");
    traced.enable_trace();
    let (_, trace) = traced.run_traced();
    let displaced: usize = trace
        .events()
        .iter()
        .filter_map(|(_, ev)| match ev {
            TraceEvent::AuthProcessed { displaced, .. } => Some(displaced.len()),
            _ => None,
        })
        .sum();
    assert!(
        displaced > 0,
        "contended config should displace local lock holders during authentication"
    );

    let serial = HybridSystem::new(cfg.clone(), spec).expect("valid").run();
    let (metrics, report) = HybridSystem::new(cfg, spec)
        .expect("valid")
        .run_threads_report(4, None);
    assert!(!report.serial, "contended config should run speculatively");
    assert!(report.windows > 0);
    assert_eq!(
        report.conflicts, 0,
        "fault-free displacements are partition-local; got {report:?}"
    );
    assert_eq!(serial, metrics);
}

/// A faulted configuration is ineligible for speculation and must fall
/// back to the serial loop — same metrics, `serial` flagged.
#[test]
fn sim_threads_fall_back_serially_on_faulted_config() {
    let mut cfg = contended_config();
    cfg.fault_schedule = FaultSchedule::empty()
        .site_outage(0, 6.0, 9.0)
        .central_outage(10.0, 12.0)
        .link_outage(3, 8.0, 10.0);
    cfg.failure_aware = true;
    let serial = HybridSystem::new(cfg.clone(), RouterSpec::QueueLength)
        .expect("valid")
        .run();
    for threads in SIM_THREADS {
        let (metrics, report) = HybridSystem::new(cfg.clone(), RouterSpec::QueueLength)
            .expect("valid")
            .run_threads_report(threads, None);
        assert!(report.serial, "faulted config must take the serial path");
        assert_eq!(serial, metrics, "sim-threads={threads}");
    }
}

/// Equivalence must hold for *every* window size in `(0, comm_delay]`,
/// not just the default: randomized window sizes, seeded and bounded by
/// `PROPTEST_CASES`.
#[test]
fn randomized_window_sizes_preserve_equivalence() {
    let mut rng = SimRng::seed_from_u64(0x5EC_CA5E5);
    let cfg = contended_config();
    let spec = RouterSpec::Static { p_ship: 0.7 };
    let comm = cfg.params.comm_delay;
    let serial = HybridSystem::new(cfg.clone(), spec).expect("valid").run();
    for case in 0..prop_cases(6) {
        let window = comm * (0.05 + 0.95 * rng.random::<f64>());
        let threads = 2 + (rng.random::<u32>() as usize) % 7;
        let (metrics, report) = HybridSystem::new(cfg.clone(), spec)
            .expect("valid")
            .run_threads_report(threads, Some(window));
        assert!(!report.serial, "case {case}: window {window} fell back");
        assert_eq!(
            serial, metrics,
            "case {case}: window={window} threads={threads}"
        );
    }
}

/// `--sim-threads` composes with the experiment engine's `--jobs`:
/// replicating through the speculative executor is bit-identical to
/// the serial engine for every (jobs, sim-threads) pair.
#[test]
fn sim_threads_compose_with_jobs() {
    let cfg = quick_config();
    let spec = RouterSpec::Static { p_ship: 0.5 };
    let reference = replicate_jobs(&cfg, spec, 3, 1).expect("valid");
    for jobs in [1, 2] {
        for threads in [1, 4] {
            let engine: Vec<_> = (0..3u64)
                .map(|k| {
                    let seed = derive_seed(cfg.seed, NO_RATE_INDEX, strategy_tag(&spec), k);
                    run_simulation_threads(cfg.clone().with_seed(seed), spec, threads)
                        .expect("valid")
                })
                .collect();
            let engine_jobs = replicate_jobs(&cfg, spec, 3, jobs).expect("valid");
            assert_eq!(reference, engine_jobs, "jobs={jobs}");
            assert_eq!(reference, engine, "sim-threads={threads} jobs={jobs}");
        }
    }
}

/// Strategy tags separate every policy the sweep grid can hold,
/// including parameterized variants that differ only in their floats.
#[test]
fn strategy_tags_distinguish_parameterized_specs() {
    let mut rng = SimRng::seed_from_u64(0x7A65);
    for _ in 0..256 {
        let p1 = rng.random::<f64>();
        let p2 = rng.random::<f64>();
        if p1 == p2 {
            continue;
        }
        assert_ne!(
            strategy_tag(&RouterSpec::Static { p_ship: p1 }),
            strategy_tag(&RouterSpec::Static { p_ship: p2 }),
            "Static tags collided for p_ship {p1} vs {p2}"
        );
        assert_ne!(
            strategy_tag(&RouterSpec::UtilizationThreshold { threshold: p1 }),
            strategy_tag(&RouterSpec::UtilizationThreshold { threshold: p2 }),
            "UtilizationThreshold tags collided for {p1} vs {p2}"
        );
    }
}
