//! Protocol-invariant tests: run the simulator with tracing enabled and
//! verify properties of the Section 2 protocol that aggregate metrics
//! cannot show — message causality, FIFO application of asynchronous
//! updates, authentication bookkeeping, and abort accounting.

use std::collections::{HashMap, HashSet};

use hls_core::{
    replicate_jobs, FaultSchedule, HybridSystem, Route, RouterSpec, SystemConfig, Trace,
    TraceEvent, TxnClass, UtilizationEstimator,
};
use hls_lockmgr::LockId;

fn traced(cfg: SystemConfig, spec: RouterSpec) -> Trace {
    let (_, trace) = HybridSystem::new(cfg, spec)
        .expect("valid config")
        .run_traced();
    trace
}

fn contended_cfg() -> SystemConfig {
    // Small lock space so every cross-site mechanism fires.
    let mut cfg = SystemConfig::paper_default()
        .with_total_rate(14.0)
        .with_horizon(120.0, 0.0)
        .with_seed(97);
    cfg.params.lockspace = 1500.0;
    cfg
}

#[test]
fn async_updates_apply_in_fifo_order_per_site() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.5 });
    let mut sent: HashMap<usize, Vec<Vec<LockId>>> = HashMap::new();
    let mut applied: HashMap<usize, Vec<Vec<LockId>>> = HashMap::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AsyncSent { site, locks } => {
                sent.entry(*site).or_default().push(locks.clone());
            }
            TraceEvent::AsyncApplied { site, locks, .. } => {
                applied.entry(*site).or_default().push(locks.clone());
            }
            _ => {}
        }
    }
    assert!(!sent.is_empty(), "no async updates were sent");
    for (site, sent_seq) in &sent {
        let applied_seq = applied.get(site).cloned().unwrap_or_default();
        // Everything applied was sent, in the same per-site order (the
        // tail of `sent` may still be in flight at the horizon).
        assert!(
            applied_seq.len() <= sent_seq.len(),
            "site {site}: applied more than sent"
        );
        assert_eq!(
            applied_seq[..],
            sent_seq[..applied_seq.len()],
            "site {site}: async updates reordered"
        );
    }
}

#[test]
fn local_commit_precedes_its_async_send() {
    let trace = traced(contended_cfg(), RouterSpec::NoSharing);
    // Without batching, every commit with updates is immediately followed
    // (same timestamp) by an AsyncSent carrying exactly those locks.
    let events = trace.events();
    for (i, (t, e)) in events.iter().enumerate() {
        if let TraceEvent::LocalCommit { site, updated, .. } = e {
            if updated.is_empty() {
                continue;
            }
            #[allow(clippy::collapsible_match)]
            let next = &events[i + 1];
            assert_eq!(next.0, *t, "async send delayed past the commit instant");
            match &next.1 {
                TraceEvent::AsyncSent { site: s, locks } => {
                    assert_eq!(s, site);
                    assert_eq!(locks, updated);
                }
                other => panic!("expected AsyncSent after commit, got {other:?}"),
            }
        }
    }
}

#[test]
fn every_completion_has_exactly_one_arrival_and_consistent_route() {
    let trace = traced(contended_cfg(), RouterSpec::QueueLength);
    let mut arrivals: HashMap<u64, Route> = HashMap::new();
    let mut completed: HashSet<u64> = HashSet::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::Arrival { txn, route, .. } => {
                assert!(
                    arrivals.insert(*txn, *route).is_none(),
                    "duplicate arrival for txn {txn}"
                );
            }
            TraceEvent::Completion { txn, route, .. } => {
                assert!(completed.insert(*txn), "txn {txn} completed twice");
                assert_eq!(
                    arrivals.get(txn),
                    Some(route),
                    "txn {txn} completed on a different route than it was given"
                );
            }
            _ => {}
        }
    }
    assert!(completed.len() > 500);
    // All completions correspond to arrivals.
    assert!(completed.iter().all(|t| arrivals.contains_key(t)));
}

#[test]
fn auth_commits_only_after_all_sites_processed() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.6 });
    // For each authentication round: AuthStarted -> one AuthProcessed per
    // site -> AuthResolved; committed only if all processed positively and
    // no invalidation arrived meanwhile.
    let mut pending: HashMap<u64, (HashSet<usize>, bool)> = HashMap::new();
    let mut rounds = 0;
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AuthStarted { txn, sites } => {
                let set: HashSet<usize> = sites.iter().copied().collect();
                assert!(!set.is_empty());
                pending.insert(*txn, (set, true));
            }
            TraceEvent::AuthProcessed {
                txn,
                site,
                positive,
                ..
            } => {
                let entry = pending
                    .get_mut(txn)
                    .unwrap_or_else(|| panic!("auth processed without start: {txn}"));
                assert!(
                    entry.0.remove(site),
                    "txn {txn}: site {site} processed twice or was not contacted"
                );
                entry.1 &= positive;
            }
            TraceEvent::AuthResolved { txn, committed } => {
                let (missing, all_positive) = pending
                    .remove(txn)
                    .unwrap_or_else(|| panic!("auth resolved without start: {txn}"));
                assert!(
                    missing.is_empty(),
                    "txn {txn} resolved before all sites replied"
                );
                if *committed {
                    assert!(
                        all_positive,
                        "txn {txn} committed despite a negative acknowledgement"
                    );
                }
                rounds += 1;
            }
            _ => {}
        }
    }
    assert!(rounds > 100, "only {rounds} authentication rounds traced");
}

#[test]
fn negative_acks_force_reexecution_and_eventual_commit() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.6 });
    // A transaction whose round failed must start another round or never
    // complete within the horizon; a committed transaction's LAST round
    // must be a success.
    let mut last_round: HashMap<u64, bool> = HashMap::new();
    let mut failures = 0;
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AuthResolved { txn, committed } => {
                last_round.insert(*txn, *committed);
                if !committed {
                    failures += 1;
                }
            }
            TraceEvent::Completion {
                txn,
                route: Route::Central,
                ..
            } => {
                assert_eq!(
                    last_round.get(txn),
                    Some(&true),
                    "txn {txn} completed without a successful authentication"
                );
            }
            _ => {}
        }
    }
    assert!(failures > 0, "no failed authentications in a contended run");
}

#[test]
fn displaced_local_holders_eventually_abort() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.6 });
    let mut displaced: HashSet<u64> = HashSet::new();
    let mut aborted: HashSet<u64> = HashSet::new();
    let mut completed_after_displacement = Vec::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AuthProcessed { displaced: d, .. } => {
                displaced.extend(d.iter().copied());
            }
            TraceEvent::InvalidationAbort { txn, .. } | TraceEvent::DeadlockAbort { txn, .. } => {
                aborted.insert(*txn);
                displaced.remove(txn);
            }
            TraceEvent::Completion { txn, .. } if displaced.contains(txn) => {
                completed_after_displacement.push(*txn);
            }
            _ => {}
        }
    }
    assert!(
        completed_after_displacement.is_empty(),
        "displaced transactions committed without aborting: {completed_after_displacement:?}"
    );
    assert!(!aborted.is_empty(), "contended run produced no aborts");
}

#[test]
fn invalidated_central_transactions_do_not_commit_that_attempt() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.6 });
    // After an AsyncApplied invalidates txn T, T's next AuthResolved must
    // be a failure (the protocol's final invalidation check).
    let mut poisoned: HashSet<u64> = HashSet::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AsyncApplied { invalidated, .. } => {
                poisoned.extend(invalidated.iter().copied());
            }
            TraceEvent::AuthResolved { txn, committed } if poisoned.remove(txn) => {
                assert!(
                    !committed,
                    "txn {txn} committed despite invalidation before resolution"
                );
            }
            TraceEvent::InvalidationAbort { txn, .. } | TraceEvent::DeadlockAbort { txn, .. } => {
                // The attempt aborted before resolution (invalidation
                // discovered at commit-check, or the transaction was chosen
                // as a deadlock victim); either way the rerun starts clean.
                poisoned.remove(txn);
            }
            _ => {}
        }
    }
}

#[test]
fn attempts_in_completions_match_abort_counts() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.5 });
    let mut aborts_by_txn: HashMap<u64, u32> = HashMap::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::DeadlockAbort { txn, .. } | TraceEvent::InvalidationAbort { txn, .. } => {
                *aborts_by_txn.entry(*txn).or_default() += 1;
            }
            TraceEvent::AuthResolved {
                txn,
                committed: false,
            } => {
                *aborts_by_txn.entry(*txn).or_default() += 1;
            }
            TraceEvent::Completion { txn, attempts, .. } => {
                let aborts = aborts_by_txn.get(txn).copied().unwrap_or(0);
                assert_eq!(
                    *attempts, aborts,
                    "txn {txn}: attempts {attempts} but {aborts} aborts traced"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn class_b_never_routes_local() {
    let trace = traced(contended_cfg(), RouterSpec::NoSharing);
    for (_, e) in trace.events() {
        if let TraceEvent::Arrival { class, route, .. } = e {
            if *class == hls_core::TxnClass::B {
                assert_eq!(*route, Route::Central);
            }
        }
    }
}

/// `contended_cfg` plus a site 0 outage over [30, 90).
fn site_outage_cfg(failure_aware: bool) -> SystemConfig {
    let mut cfg = contended_cfg();
    cfg.fault_schedule = FaultSchedule::empty().site_outage(0, 30.0, 90.0);
    cfg.failure_aware = failure_aware;
    cfg
}

#[test]
fn empty_fault_schedule_reproduces_fault_free_metrics_exactly() {
    for spec in [
        RouterSpec::NoSharing,
        RouterSpec::Static { p_ship: 0.5 },
        RouterSpec::QueueLength,
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
    ] {
        let plain = HybridSystem::new(contended_cfg(), spec).unwrap().run();
        let mut cfg = contended_cfg().with_faults(FaultSchedule::empty());
        assert!(cfg.failure_aware);
        let faulted = HybridSystem::new(cfg.clone(), spec).unwrap().run();
        assert_eq!(
            plain, faulted,
            "{spec:?}: empty schedule changed the results"
        );
        // Even with failure-aware routing disabled again.
        cfg.failure_aware = false;
        let oblivious = HybridSystem::new(cfg, spec).unwrap().run();
        assert_eq!(plain, oblivious);
    }
}

#[test]
fn no_commits_from_a_crashed_site_during_its_outage() {
    let (metrics, trace) = HybridSystem::new(site_outage_cfg(false), RouterSpec::NoSharing)
        .unwrap()
        .run_traced();
    for (t, e) in trace.events() {
        if let TraceEvent::LocalCommit { site: 0, .. } = e {
            let secs = t.as_secs();
            assert!(
                !(30.0..90.0).contains(&secs),
                "site 0 committed locally at t={secs} during its outage"
            );
        }
    }
    // The crash killed in-flight work and, without failure awareness,
    // class A arrivals at the dead site were turned away.
    assert!(metrics.availability.crash_aborts_site > 0);
    assert!(metrics.availability.rejected_class_a > 0);
    assert!(metrics.availability.failover_shipped == 0);
    assert!((metrics.availability.downtime_secs - 60.0).abs() < 1e-9);
}

#[test]
fn failure_aware_routing_ships_class_a_around_a_site_outage() {
    let (metrics, trace) = HybridSystem::new(site_outage_cfg(true), RouterSpec::NoSharing)
        .unwrap()
        .run_traced();
    // Class A arrivals at the downed site were shipped centrally instead
    // of rejected...
    assert_eq!(metrics.availability.rejected_class_a, 0);
    assert!(metrics.availability.failover_shipped > 0);
    // ...and some of them actually completed: throughput from site 0
    // stays nonzero through the outage.
    let mut shipped_in_window: HashSet<u64> = HashSet::new();
    let mut completed_shipped = 0usize;
    for (t, e) in trace.events() {
        match e {
            TraceEvent::Arrival {
                txn,
                site: 0,
                class: TxnClass::A,
                route: Route::Central,
            } if (30.0..90.0).contains(&t.as_secs()) => {
                shipped_in_window.insert(*txn);
            }
            TraceEvent::Completion { txn, .. } if shipped_in_window.contains(txn) => {
                completed_shipped += 1;
            }
            _ => {}
        }
    }
    assert!(
        completed_shipped > 0,
        "no class A transaction from the downed site completed centrally"
    );
    assert!(metrics.availability.mean_response_during_outage.is_some());
}

#[test]
fn recovered_site_replays_queued_updates_in_fifo_order() {
    // Batch asynchronous updates so the crash catches a non-empty durable
    // queue; recovery must replay it before any deferred traffic.
    let mut cfg = site_outage_cfg(true);
    cfg.async_batch_window = Some(5.0);
    let (_, trace) = HybridSystem::new(cfg, RouterSpec::Static { p_ship: 0.3 })
        .unwrap()
        .run_traced();
    let mut sent: Vec<Vec<LockId>> = Vec::new();
    let mut applied: Vec<Vec<LockId>> = Vec::new();
    let mut replayed_after_recovery = false;
    for (t, e) in trace.events() {
        match e {
            TraceEvent::AsyncSent { site: 0, locks } => {
                let secs = t.as_secs();
                assert!(
                    !(30.0..90.0).contains(&secs),
                    "crashed site sent an update at t={secs}"
                );
                if (90.0..91.0).contains(&secs) {
                    replayed_after_recovery = true;
                }
                sent.push(locks.clone());
            }
            TraceEvent::AsyncApplied { site: 0, locks, .. } => {
                applied.push(locks.clone());
            }
            _ => {}
        }
    }
    assert!(!sent.is_empty(), "site 0 never sent an async update");
    assert!(
        replayed_after_recovery,
        "recovery did not replay the queued updates"
    );
    // Everything applied was sent, in order (the tail may be in flight).
    assert!(applied.len() <= sent.len());
    assert_eq!(
        applied[..],
        sent[..applied.len()],
        "async updates reordered across the crash"
    );
}

#[test]
fn serial_and_parallel_replications_agree_under_faults() {
    let mut cfg = contended_cfg().with_horizon(60.0, 10.0);
    cfg.fault_schedule = FaultSchedule::empty()
        .site_outage(0, 15.0, 30.0)
        .central_outage(35.0, 42.0)
        .link_outage(3, 20.0, 28.0)
        .latency_spike(5, 12.0, 50.0, 4.0);
    cfg.failure_aware = true;
    let spec = RouterSpec::Static { p_ship: 0.5 };
    let serial = replicate_jobs(&cfg, spec, 4, 1).unwrap();
    let parallel = replicate_jobs(&cfg, spec, 4, 4).unwrap();
    assert_eq!(
        serial, parallel,
        "fault schedule broke serial/parallel equivalence"
    );
    assert!(serial
        .iter()
        .all(|m| m.availability.crash_aborts_site > 0 || m.availability.deferred_messages > 0));
}

#[test]
fn drained_run_converges_after_recovered_outages() {
    let mut cfg = site_outage_cfg(true);
    cfg.fault_schedule = FaultSchedule::empty()
        .site_outage(0, 20.0, 40.0)
        .central_outage(50.0, 65.0)
        .link_outage(4, 70.0, 85.0);
    let (_, report) = HybridSystem::new(cfg, RouterSpec::Static { p_ship: 0.4 })
        .unwrap()
        .run_drained();
    assert!(
        report.converged(),
        "replicas diverged after crashes: {} in flight, {:?} divergent",
        report.in_flight_txns,
        report.divergent
    );
}

#[test]
fn trace_is_disabled_by_default_and_deterministic_when_enabled() {
    let cfg = contended_cfg();
    let spec = RouterSpec::MinAverage {
        estimator: UtilizationEstimator::NumInSystem,
    };
    // Tracing must not change the simulation outcome.
    let plain = HybridSystem::new(cfg.clone(), spec).unwrap().run();
    let (traced_metrics, trace) = HybridSystem::new(cfg.clone(), spec).unwrap().run_traced();
    assert_eq!(plain, traced_metrics);
    assert!(!trace.is_empty());
    let (again, trace2) = HybridSystem::new(cfg, spec).unwrap().run_traced();
    assert_eq!(traced_metrics, again);
    assert_eq!(trace.len(), trace2.len());
    assert_eq!(trace.events(), trace2.events());
}
