//! Protocol-invariant tests: run the simulator with tracing enabled and
//! verify properties of the Section 2 protocol that aggregate metrics
//! cannot show — message causality, FIFO application of asynchronous
//! updates, authentication bookkeeping, and abort accounting.

use std::collections::{HashMap, HashSet};

use hls_core::{
    HybridSystem, Route, RouterSpec, SystemConfig, Trace, TraceEvent, UtilizationEstimator,
};
use hls_lockmgr::LockId;

fn traced(cfg: SystemConfig, spec: RouterSpec) -> Trace {
    let (_, trace) = HybridSystem::new(cfg, spec)
        .expect("valid config")
        .run_traced();
    trace
}

fn contended_cfg() -> SystemConfig {
    // Small lock space so every cross-site mechanism fires.
    let mut cfg = SystemConfig::paper_default()
        .with_total_rate(14.0)
        .with_horizon(120.0, 0.0)
        .with_seed(97);
    cfg.params.lockspace = 1500.0;
    cfg
}

#[test]
fn async_updates_apply_in_fifo_order_per_site() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.5 });
    let mut sent: HashMap<usize, Vec<Vec<LockId>>> = HashMap::new();
    let mut applied: HashMap<usize, Vec<Vec<LockId>>> = HashMap::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AsyncSent { site, locks } => {
                sent.entry(*site).or_default().push(locks.clone());
            }
            TraceEvent::AsyncApplied { site, locks, .. } => {
                applied.entry(*site).or_default().push(locks.clone());
            }
            _ => {}
        }
    }
    assert!(!sent.is_empty(), "no async updates were sent");
    for (site, sent_seq) in &sent {
        let applied_seq = applied.get(site).cloned().unwrap_or_default();
        // Everything applied was sent, in the same per-site order (the
        // tail of `sent` may still be in flight at the horizon).
        assert!(
            applied_seq.len() <= sent_seq.len(),
            "site {site}: applied more than sent"
        );
        assert_eq!(
            applied_seq[..],
            sent_seq[..applied_seq.len()],
            "site {site}: async updates reordered"
        );
    }
}

#[test]
fn local_commit_precedes_its_async_send() {
    let trace = traced(contended_cfg(), RouterSpec::NoSharing);
    // Without batching, every commit with updates is immediately followed
    // (same timestamp) by an AsyncSent carrying exactly those locks.
    let events = trace.events();
    for (i, (t, e)) in events.iter().enumerate() {
        if let TraceEvent::LocalCommit { site, updated, .. } = e {
            if updated.is_empty() {
                continue;
            }
            #[allow(clippy::collapsible_match)]
            let next = &events[i + 1];
            assert_eq!(next.0, *t, "async send delayed past the commit instant");
            match &next.1 {
                TraceEvent::AsyncSent { site: s, locks } => {
                    assert_eq!(s, site);
                    assert_eq!(locks, updated);
                }
                other => panic!("expected AsyncSent after commit, got {other:?}"),
            }
        }
    }
}

#[test]
fn every_completion_has_exactly_one_arrival_and_consistent_route() {
    let trace = traced(contended_cfg(), RouterSpec::QueueLength);
    let mut arrivals: HashMap<u64, Route> = HashMap::new();
    let mut completed: HashSet<u64> = HashSet::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::Arrival { txn, route, .. } => {
                assert!(
                    arrivals.insert(*txn, *route).is_none(),
                    "duplicate arrival for txn {txn}"
                );
            }
            TraceEvent::Completion { txn, route, .. } => {
                assert!(completed.insert(*txn), "txn {txn} completed twice");
                assert_eq!(
                    arrivals.get(txn),
                    Some(route),
                    "txn {txn} completed on a different route than it was given"
                );
            }
            _ => {}
        }
    }
    assert!(completed.len() > 500);
    // All completions correspond to arrivals.
    assert!(completed.iter().all(|t| arrivals.contains_key(t)));
}

#[test]
fn auth_commits_only_after_all_sites_processed() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.6 });
    // For each authentication round: AuthStarted -> one AuthProcessed per
    // site -> AuthResolved; committed only if all processed positively and
    // no invalidation arrived meanwhile.
    let mut pending: HashMap<u64, (HashSet<usize>, bool)> = HashMap::new();
    let mut rounds = 0;
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AuthStarted { txn, sites } => {
                let set: HashSet<usize> = sites.iter().copied().collect();
                assert!(!set.is_empty());
                pending.insert(*txn, (set, true));
            }
            TraceEvent::AuthProcessed {
                txn,
                site,
                positive,
                ..
            } => {
                let entry = pending
                    .get_mut(txn)
                    .unwrap_or_else(|| panic!("auth processed without start: {txn}"));
                assert!(
                    entry.0.remove(site),
                    "txn {txn}: site {site} processed twice or was not contacted"
                );
                entry.1 &= positive;
            }
            TraceEvent::AuthResolved { txn, committed } => {
                let (missing, all_positive) = pending
                    .remove(txn)
                    .unwrap_or_else(|| panic!("auth resolved without start: {txn}"));
                assert!(
                    missing.is_empty(),
                    "txn {txn} resolved before all sites replied"
                );
                if *committed {
                    assert!(
                        all_positive,
                        "txn {txn} committed despite a negative acknowledgement"
                    );
                }
                rounds += 1;
            }
            _ => {}
        }
    }
    assert!(rounds > 100, "only {rounds} authentication rounds traced");
}

#[test]
fn negative_acks_force_reexecution_and_eventual_commit() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.6 });
    // A transaction whose round failed must start another round or never
    // complete within the horizon; a committed transaction's LAST round
    // must be a success.
    let mut last_round: HashMap<u64, bool> = HashMap::new();
    let mut failures = 0;
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AuthResolved { txn, committed } => {
                last_round.insert(*txn, *committed);
                if !committed {
                    failures += 1;
                }
            }
            TraceEvent::Completion {
                txn,
                route: Route::Central,
                ..
            } => {
                assert_eq!(
                    last_round.get(txn),
                    Some(&true),
                    "txn {txn} completed without a successful authentication"
                );
            }
            _ => {}
        }
    }
    assert!(failures > 0, "no failed authentications in a contended run");
}

#[test]
fn displaced_local_holders_eventually_abort() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.6 });
    let mut displaced: HashSet<u64> = HashSet::new();
    let mut aborted: HashSet<u64> = HashSet::new();
    let mut completed_after_displacement = Vec::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AuthProcessed { displaced: d, .. } => {
                displaced.extend(d.iter().copied());
            }
            TraceEvent::InvalidationAbort { txn, .. } | TraceEvent::DeadlockAbort { txn, .. } => {
                aborted.insert(*txn);
                displaced.remove(txn);
            }
            TraceEvent::Completion { txn, .. } if displaced.contains(txn) => {
                completed_after_displacement.push(*txn);
            }
            _ => {}
        }
    }
    assert!(
        completed_after_displacement.is_empty(),
        "displaced transactions committed without aborting: {completed_after_displacement:?}"
    );
    assert!(!aborted.is_empty(), "contended run produced no aborts");
}

#[test]
fn invalidated_central_transactions_do_not_commit_that_attempt() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.6 });
    // After an AsyncApplied invalidates txn T, T's next AuthResolved must
    // be a failure (the protocol's final invalidation check).
    let mut poisoned: HashSet<u64> = HashSet::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::AsyncApplied { invalidated, .. } => {
                poisoned.extend(invalidated.iter().copied());
            }
            TraceEvent::AuthResolved { txn, committed } if poisoned.remove(txn) => {
                assert!(
                    !committed,
                    "txn {txn} committed despite invalidation before resolution"
                );
            }
            TraceEvent::InvalidationAbort { txn, .. } => {
                // Invalidation discovered at commit-check before auth.
                poisoned.remove(txn);
            }
            _ => {}
        }
    }
}

#[test]
fn attempts_in_completions_match_abort_counts() {
    let trace = traced(contended_cfg(), RouterSpec::Static { p_ship: 0.5 });
    let mut aborts_by_txn: HashMap<u64, u32> = HashMap::new();
    for (_, e) in trace.events() {
        match e {
            TraceEvent::DeadlockAbort { txn, .. } | TraceEvent::InvalidationAbort { txn, .. } => {
                *aborts_by_txn.entry(*txn).or_default() += 1;
            }
            TraceEvent::AuthResolved {
                txn,
                committed: false,
            } => {
                *aborts_by_txn.entry(*txn).or_default() += 1;
            }
            TraceEvent::Completion { txn, attempts, .. } => {
                let aborts = aborts_by_txn.get(txn).copied().unwrap_or(0);
                assert_eq!(
                    *attempts, aborts,
                    "txn {txn}: attempts {attempts} but {aborts} aborts traced"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn class_b_never_routes_local() {
    let trace = traced(contended_cfg(), RouterSpec::NoSharing);
    for (_, e) in trace.events() {
        if let TraceEvent::Arrival { class, route, .. } = e {
            if *class == hls_core::TxnClass::B {
                assert_eq!(*route, Route::Central);
            }
        }
    }
}

#[test]
fn trace_is_disabled_by_default_and_deterministic_when_enabled() {
    let cfg = contended_cfg();
    let spec = RouterSpec::MinAverage {
        estimator: UtilizationEstimator::NumInSystem,
    };
    // Tracing must not change the simulation outcome.
    let plain = HybridSystem::new(cfg.clone(), spec).unwrap().run();
    let (traced_metrics, trace) = HybridSystem::new(cfg.clone(), spec).unwrap().run_traced();
    assert_eq!(plain, traced_metrics);
    assert!(!trace.is_empty());
    let (again, trace2) = HybridSystem::new(cfg, spec).unwrap().run_traced();
    assert_eq!(traced_metrics, again);
    assert_eq!(trace.len(), trace2.len());
    assert_eq!(trace.events(), trace2.events());
}
