//! Randomized (seeded, deterministic) tests of the end-to-end simulator:
//! determinism and conservation laws over randomized configurations.

use hls_core::{run_simulation, RouterSpec, SystemConfig, UtilizationEstimator};
use hls_sim::{sample_uniform, SimRng};

fn random_router(rng: &mut SimRng) -> RouterSpec {
    match rng.random_range(0..7) {
        0 => RouterSpec::NoSharing,
        1 => RouterSpec::Static {
            p_ship: rng.random::<f64>(),
        },
        2 => RouterSpec::MeasuredResponse,
        3 => RouterSpec::QueueLength,
        4 => RouterSpec::UtilizationThreshold {
            threshold: sample_uniform(rng, -0.3, 0.3),
        },
        5 => RouterSpec::MinIncoming {
            estimator: UtilizationEstimator::QueueLength,
        },
        _ => RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
    }
}

fn random_config(rng: &mut SimRng) -> SystemConfig {
    let n_sites = rng.random_range(2..6) as usize; // small for speed
    let rate = sample_uniform(rng, 0.2, 1.8);
    let p_local = sample_uniform(rng, 0.3, 1.0);
    let delay = sample_uniform(rng, 0.0, 0.6);
    let write_fraction = sample_uniform(rng, 0.3, 1.0);
    let seed = rng.random::<u64>();
    let instantaneous = rng.random_range(0..2) == 0;
    let mut cfg = SystemConfig::paper_default()
        .with_site_rate(rate)
        .with_seed(seed)
        .with_comm_delay(delay)
        .with_horizon(40.0, 8.0);
    cfg.params.n_sites = n_sites;
    cfg.params.p_local = p_local;
    cfg.write_fraction = write_fraction;
    cfg.instantaneous_state = instantaneous;
    cfg
}

/// Any (config, router) pair runs to completion without panicking,
/// conserves transactions, and produces sane measurements.
#[test]
fn simulator_is_total_and_conservative() {
    let mut rng = SimRng::seed_from_u64(0xC0DE_0001);
    for _ in 0..24 {
        let cfg = random_config(&mut rng);
        let router = random_router(&mut rng);
        let m = run_simulation(cfg.clone(), router).expect("valid random config");
        // Conservation: completions can exceed arrivals only by warm-up
        // carry-over, and can lag only by the in-flight population.
        let slack = 40 + (cfg.params.n_sites * 20) as i64;
        let diff = m.completions as i64 - m.arrivals as i64;
        assert!(
            diff.abs() <= slack,
            "arrivals {} completions {}",
            m.arrivals,
            m.completions
        );
        assert!(m.mean_response >= 0.0);
        assert!((0.0..=1.0).contains(&m.shipped_fraction));
        assert!((0.0..=1.0 + 1e-9).contains(&m.rho_local));
        assert!((0.0..=1.0 + 1e-9).contains(&m.rho_central));
        if m.completions > 0 {
            assert!(m.mean_response > 0.0);
            // Nothing can finish faster than its unexpanded service path.
            let floor = cfg.params.setup_io + cfg.params.io_per_call;
            assert!(m.mean_response > floor);
        }
    }
}

/// Bit-identical determinism for every router under random configs.
#[test]
fn simulator_is_deterministic() {
    let mut rng = SimRng::seed_from_u64(0xC0DE_0002);
    for _ in 0..12 {
        let cfg = random_config(&mut rng);
        let router = random_router(&mut rng);
        let a = run_simulation(cfg.clone(), router).expect("valid");
        let b = run_simulation(cfg, router).expect("valid");
        assert_eq!(a, b);
    }
}

/// Read-only workloads never abort, under any router.
#[test]
fn read_only_never_aborts() {
    let mut rng = SimRng::seed_from_u64(0xC0DE_0003);
    for _ in 0..12 {
        let mut cfg = random_config(&mut rng);
        let router = random_router(&mut rng);
        cfg.write_fraction = 0.0;
        let m = run_simulation(cfg, router).expect("valid");
        assert_eq!(m.aborts.total(), 0);
        assert_eq!(m.mean_reruns, 0.0);
    }
}
