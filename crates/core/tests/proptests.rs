//! Property-based tests of the end-to-end simulator: determinism and
//! conservation laws over randomized configurations.

use hls_core::{run_simulation, RouterSpec, SystemConfig, UtilizationEstimator};
use proptest::prelude::*;

fn arb_router() -> impl Strategy<Value = RouterSpec> {
    prop_oneof![
        Just(RouterSpec::NoSharing),
        (0.0f64..=1.0).prop_map(|p_ship| RouterSpec::Static { p_ship }),
        Just(RouterSpec::MeasuredResponse),
        Just(RouterSpec::QueueLength),
        (-0.3f64..0.3).prop_map(|threshold| RouterSpec::UtilizationThreshold { threshold }),
        Just(RouterSpec::MinIncoming {
            estimator: UtilizationEstimator::QueueLength
        }),
        Just(RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (
        2usize..6,       // sites (small for speed)
        0.2f64..1.8,     // per-site rate
        0.3f64..1.0,     // p_local
        0.0f64..0.6,     // comm delay
        0.3f64..1.0,     // write fraction
        any::<u64>(),    // seed
        prop::bool::ANY, // instantaneous state
    )
        .prop_map(
            |(n_sites, rate, p_local, delay, write_fraction, seed, instantaneous)| {
                let mut cfg = SystemConfig::paper_default()
                    .with_site_rate(rate)
                    .with_seed(seed)
                    .with_comm_delay(delay)
                    .with_horizon(40.0, 8.0);
                cfg.params.n_sites = n_sites;
                cfg.params.p_local = p_local;
                cfg.write_fraction = write_fraction;
                cfg.instantaneous_state = instantaneous;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (config, router) pair runs to completion without panicking,
    /// conserves transactions, and produces sane measurements.
    #[test]
    fn simulator_is_total_and_conservative(cfg in arb_config(), router in arb_router()) {
        let m = run_simulation(cfg.clone(), router).expect("valid random config");
        // Conservation: completions can exceed arrivals only by warm-up
        // carry-over, and can lag only by the in-flight population.
        let slack = 40 + (cfg.params.n_sites * 20) as i64;
        let diff = m.completions as i64 - m.arrivals as i64;
        prop_assert!(diff.abs() <= slack, "arrivals {} completions {}", m.arrivals, m.completions);
        prop_assert!(m.mean_response >= 0.0);
        prop_assert!((0.0..=1.0).contains(&m.shipped_fraction));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m.rho_local));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m.rho_central));
        if m.completions > 0 {
            prop_assert!(m.mean_response > 0.0);
            // Nothing can finish faster than its unexpanded service path.
            let floor = cfg.params.setup_io + cfg.params.io_per_call;
            prop_assert!(m.mean_response > floor);
        }
    }

    /// Bit-identical determinism for every router under random configs.
    #[test]
    fn simulator_is_deterministic(cfg in arb_config(), router in arb_router()) {
        let a = run_simulation(cfg.clone(), router).expect("valid");
        let b = run_simulation(cfg, router).expect("valid");
        prop_assert_eq!(a, b);
    }

    /// Read-only workloads never abort, under any router.
    #[test]
    fn read_only_never_aborts(cfg in arb_config(), router in arb_router()) {
        let mut cfg = cfg;
        cfg.write_fraction = 0.0;
        let m = run_simulation(cfg, router).expect("valid");
        prop_assert_eq!(m.aborts.total(), 0);
        prop_assert_eq!(m.mean_reruns, 0.0);
    }
}
