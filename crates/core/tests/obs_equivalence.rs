//! Observability-equivalence suite: enabling histograms, profiling, or
//! streaming trace sinks must never change simulated results.
//!
//! The contract mirrors `parallel_equivalence.rs`: metrics depend only
//! on the experiment grid, never on what is being observed. These tests
//! pin bit-identical [`RunMetrics`] (via `PartialEq`, with the `obs`
//! report stripped) between obs-on and obs-off runs for every worker
//! count, identical event streams between the in-memory trace and a
//! pluggable sink, and an exact JSONL round trip.

use std::io::Write;
use std::sync::{Arc, Mutex};

use hls_core::{
    replicate_jobs, run_simulation, FaultSchedule, HybridSystem, JsonlSink, ObsConfig, RouterSpec,
    RunMetrics, SystemConfig, TraceEvent, TraceSink, UtilizationEstimator, TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
};
use hls_obs::{parse_json, JsonValue};

/// Short-horizon base config; equivalence is about accounting, not
/// statistical quality.
fn quick_config() -> SystemConfig {
    SystemConfig::paper_default()
        .with_total_rate(18.0)
        .with_horizon(30.0, 6.0)
        .with_seed(42)
}

/// A contention-heavy variant that exercises deadlock aborts and their
/// restart backoff.
fn contended_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default()
        .with_total_rate(26.0)
        .with_horizon(40.0, 5.0)
        .with_seed(7);
    // Tightest lockspace the validator allows (10 sites x 10 locks/txn):
    // near-certain lock conflicts, so deadlocks actually occur.
    cfg.params.lockspace = 100.0;
    cfg
}

fn strip_obs(mut m: RunMetrics) -> RunMetrics {
    m.obs = None;
    m
}

#[test]
fn obs_on_metrics_are_bit_identical_to_obs_off() {
    for base in [quick_config(), contended_config()] {
        let specs = [
            RouterSpec::NoSharing,
            RouterSpec::QueueLength,
            RouterSpec::MinAverage {
                estimator: UtilizationEstimator::NumInSystem,
            },
        ];
        for spec in specs {
            let plain = run_simulation(base.clone(), spec).expect("valid");
            assert!(plain.obs.is_none(), "obs-off run must not carry a report");
            let observed =
                run_simulation(base.clone().with_obs(ObsConfig::full()), spec).expect("valid");
            let report = observed
                .obs
                .clone()
                .expect("obs-on run must carry a report");
            assert!(!report.response.is_empty(), "response histograms missing");
            assert_eq!(
                plain,
                strip_obs(observed),
                "{} diverged under observation",
                spec.label()
            );
            // The histograms describe exactly the measured completions.
            let histogram_count: u64 = report.response.iter().map(|(_, h)| h.count()).sum();
            assert_eq!(histogram_count, plain.completions);
        }
    }
}

#[test]
fn obs_on_replications_are_bit_identical_across_job_counts() {
    let plain_cfg = quick_config();
    let obs_cfg = plain_cfg.clone().with_obs(ObsConfig::full());
    let spec = RouterSpec::QueueLength;
    let baseline = replicate_jobs(&plain_cfg, spec, 4, 1).expect("valid");
    for jobs in [1, 2, 8] {
        let observed = replicate_jobs(&obs_cfg, spec, 4, jobs).expect("valid");
        let stripped: Vec<RunMetrics> = observed.into_iter().map(strip_obs).collect();
        assert_eq!(baseline, stripped, "jobs={jobs} diverged under observation");
    }
}

#[test]
fn contended_run_records_restart_backoff_histogram() {
    let cfg = contended_config()
        .with_obs(ObsConfig::full())
        .with_deadlock_backoff_window(0.05);
    let m = run_simulation(cfg, RouterSpec::NoSharing).expect("valid");
    let deadlocks = m.aborts.deadlock_local + m.aborts.deadlock_central;
    assert!(deadlocks > 0, "config failed to provoke deadlocks");
    let obs = m.obs.expect("report");
    let backoff = obs
        .phases
        .iter()
        .find(|(name, _)| *name == "restart_backoff")
        .map(|(_, h)| h)
        .expect("restart_backoff histogram missing despite deadlocks");
    assert_eq!(backoff.count(), deadlocks);
    // Every backoff is drawn from [0, window).
    assert!(backoff.max().unwrap() < 0.05);
}

/// The configured window rescales the backoff delays deterministically.
#[test]
fn backoff_window_knob_bounds_the_recorded_delays() {
    let run = |window: f64| {
        let cfg = contended_config()
            .with_obs(ObsConfig::full())
            .with_deadlock_backoff_window(window);
        run_simulation(cfg, RouterSpec::NoSharing).expect("valid")
    };
    let narrow = run(0.01);
    let wide = run(0.5);
    let max_of = |m: &RunMetrics| {
        m.obs
            .as_ref()
            .unwrap()
            .phases
            .iter()
            .find(|(name, _)| *name == "restart_backoff")
            .map(|(_, h)| h.max().unwrap())
            .expect("restart_backoff histogram")
    };
    assert!(max_of(&narrow) < 0.01);
    assert!(max_of(&wide) < 0.5);
    assert!(
        max_of(&wide) > 0.01,
        "wide window never exceeded the narrow one"
    );
}

/// Fault run under full lock-table validation: a contended workload with
/// site, central, and link outages hammers every release path (crashes
/// clear whole tables, victims cancel waits, authentication force-
/// acquires), while [`HybridSystem::run_validated`] re-checks the
/// wait-for graph, owner index, and arena queues of every table after
/// **each** event. Validation itself must be metrics-neutral.
#[test]
fn faulted_contended_run_preserves_lock_invariants() {
    let mut cfg = contended_config().with_horizon(60.0, 10.0);
    cfg.fault_schedule = FaultSchedule::empty()
        .site_outage(0, 15.0, 30.0)
        .central_outage(35.0, 42.0)
        .link_outage(3, 20.0, 28.0);
    cfg.failure_aware = true;
    let spec = RouterSpec::QueueLength;
    let plain = run_simulation(cfg.clone(), spec).expect("valid");
    let deadlocks = plain.aborts.deadlock_local + plain.aborts.deadlock_central;
    assert!(deadlocks > 0, "config failed to provoke deadlocks");
    let validated = HybridSystem::new(cfg, spec).expect("valid").run_validated();
    assert_eq!(plain, validated, "invariant checking changed the metrics");
}

/// A sink that shares its buffer with the test, since `run_with_sink`
/// returns an opaque `Box<dyn TraceSink>`.
#[derive(Debug)]
struct SharedSink(Arc<Mutex<Vec<(f64, TraceEvent)>>>);

impl TraceSink<TraceEvent> for SharedSink {
    fn record(&mut self, at_secs: f64, event: &TraceEvent) {
        self.0
            .lock()
            .expect("sink mutex")
            .push((at_secs, event.clone()));
    }
}

#[test]
fn sink_stream_matches_in_memory_trace() {
    let cfg = quick_config().with_total_rate(12.0);
    let spec = RouterSpec::QueueLength;
    let (m_traced, trace) = HybridSystem::new(cfg.clone(), spec)
        .expect("valid")
        .run_traced();
    let buffer = Arc::new(Mutex::new(Vec::new()));
    let (m_sink, _sink) = HybridSystem::new(cfg, spec)
        .expect("valid")
        .run_with_sink(Box::new(SharedSink(buffer.clone())));
    assert_eq!(m_traced, m_sink, "sink choice changed the metrics");
    let streamed = buffer.lock().expect("sink mutex");
    assert!(!streamed.is_empty());
    assert_eq!(streamed.len(), trace.len());
    for ((t_mem, ev_mem), (t_sink, ev_sink)) in trace.events().iter().zip(streamed.iter()) {
        assert_eq!(t_mem.as_secs(), *t_sink);
        assert_eq!(ev_mem, ev_sink);
    }
}

/// A writer that shares its bytes with the test, for the same reason.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf mutex").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_trace_round_trips_with_versioned_schema() {
    let cfg = quick_config().with_total_rate(12.0);
    let spec = RouterSpec::QueueLength;
    let (_, trace) = HybridSystem::new(cfg.clone(), spec)
        .expect("valid")
        .run_traced();
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(buf.clone()).expect("header write");
    let (_, mut sink) = HybridSystem::new(cfg, spec)
        .expect("valid")
        .run_with_sink(Box::new(sink));
    sink.flush().expect("flush");
    let bytes = buf.0.lock().expect("buf mutex").clone();
    let text = String::from_utf8(bytes).expect("utf8");
    let mut lines = text.lines();

    let header = parse_json(lines.next().expect("header line")).expect("header json");
    assert_eq!(
        header.get("schema").and_then(JsonValue::as_str),
        Some(TRACE_SCHEMA)
    );
    assert_eq!(
        header.get("version").and_then(JsonValue::as_u64),
        Some(TRACE_SCHEMA_VERSION)
    );

    let events: Vec<JsonValue> = lines.map(|l| parse_json(l).expect("event json")).collect();
    assert_eq!(events.len(), trace.len(), "event count mismatch");
    for (obj, (at, ev)) in events.iter().zip(trace.events()) {
        // f64 round-trips exactly: Rust prints shortest-round-trip floats.
        assert_eq!(obj.get("t").and_then(JsonValue::as_f64), Some(at.as_secs()));
        assert_eq!(
            obj.get("kind").and_then(JsonValue::as_str),
            Some(ev.kind()),
            "kind mismatch at t={at:?}"
        );
        if ev.kind() == "completion" {
            let f = |k: &str| obj.get(k).and_then(JsonValue::as_f64).expect("phase field");
            let sum = f("queueing")
                + f("execution")
                + f("commit")
                + f("authentication")
                + f("restart_backoff");
            let response = f("response");
            assert!(
                (sum - response).abs() < 1e-9 * response.max(1.0),
                "phases must decompose the response: {sum} vs {response}"
            );
        }
    }
}
