//! Tests of the remote-function-call execution mode for class B
//! transactions — the alternative the paper flags but does not analyze.

use hls_core::{run_simulation, ClassBMode, HybridSystem, RouterSpec, SystemConfig, TxnClass};

fn cfg(mode: ClassBMode) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default()
        .with_total_rate(8.0)
        .with_horizon(120.0, 20.0)
        .with_seed(61);
    cfg.class_b_mode = mode;
    cfg
}

#[test]
fn remote_calls_mode_runs_and_completes_class_b() {
    let m = run_simulation(cfg(ClassBMode::RemoteCalls), RouterSpec::NoSharing).unwrap();
    assert!(m.completions > 500);
    assert!(m.mean_response_class_b.is_some());
    let kinds: Vec<&str> = m.messages_by_kind.iter().map(|(k, _)| k.as_str()).collect();
    assert!(kinds.contains(&"remote_call_req"));
    assert!(kinds.contains(&"remote_call_resp"));
    // One request per database call: far more requests than transactions.
    let reqs = m
        .messages_by_kind
        .iter()
        .find(|(k, _)| k == "remote_call_req")
        .map(|&(_, c)| c)
        .unwrap();
    assert!(reqs > 5 * m.completions / 4, "reqs = {reqs}");
}

#[test]
fn shipping_whole_transactions_beats_remote_calls() {
    // The paper's motivating claim ([DIAS87]): with ~10 remote calls per
    // transaction, function shipping is far worse than transaction
    // shipping.
    let ship = run_simulation(cfg(ClassBMode::ShipWhole), RouterSpec::NoSharing).unwrap();
    let remote = run_simulation(cfg(ClassBMode::RemoteCalls), RouterSpec::NoSharing).unwrap();
    let ship_b = ship.mean_response_class_b.unwrap();
    let remote_b = remote.mean_response_class_b.unwrap();
    assert!(
        remote_b > 2.0 * ship_b,
        "remote {remote_b} vs ship {ship_b}"
    );
}

#[test]
fn class_a_is_unaffected_by_class_b_mode() {
    let ship = run_simulation(cfg(ClassBMode::ShipWhole), RouterSpec::NoSharing).unwrap();
    let remote = run_simulation(cfg(ClassBMode::RemoteCalls), RouterSpec::NoSharing).unwrap();
    let a1 = ship.mean_response_local_a.unwrap();
    let a2 = remote.mean_response_local_a.unwrap();
    // Same workload of class A locally; only indirect interference differs.
    assert!((a1 - a2).abs() / a1 < 0.25, "a1 {a1} vs a2 {a2}");
}

#[test]
fn remote_calls_converge_after_drain() {
    let (metrics, report) = HybridSystem::new(cfg(ClassBMode::RemoteCalls), RouterSpec::NoSharing)
        .unwrap()
        .run_drained();
    assert!(metrics.completions > 0);
    assert!(report.converged(), "report = {report:?}");
}

#[test]
fn traced_remote_txns_complete_as_class_b() {
    let (_, trace) = HybridSystem::new(cfg(ClassBMode::RemoteCalls), RouterSpec::NoSharing)
        .unwrap()
        .run_traced();
    let b_completions = trace
        .filter(|_, e| match e {
            hls_core::TraceEvent::Completion {
                class: TxnClass::B, ..
            } => Some(()),
            _ => None,
        })
        .count();
    assert!(b_completions > 100, "b_completions = {b_completions}");
}
