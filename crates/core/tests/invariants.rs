//! Physical conservation and consistency invariants of the simulator.
//!
//! Every run — serial or speculative, fault-free or faulted, under any
//! routing policy — must conserve transactions: each completion,
//! rejection, and crash abort accounts for exactly one admitted
//! arrival, nothing completes twice, and what is left over at the
//! horizon is a non-negative in-flight population. The reported
//! [`RunMetrics`] counters must agree with the event trace, and the
//! per-site observability histograms must partition the completion
//! count exactly. These are the invariants the speculative window
//! executor could most plausibly break (dropped or duplicated events at
//! window barriers, mis-merged metric journals), so the battery runs
//! them through `--sim-threads` paths as well.

use std::collections::HashMap;

use hls_core::{
    FaultSchedule, HybridSystem, RateProfile, RouterSpec, RunMetrics, SystemConfig, TraceEvent,
    UtilizationEstimator,
};

/// Every routing policy the paper studies.
fn all_specs() -> Vec<RouterSpec> {
    vec![
        RouterSpec::NoSharing,
        RouterSpec::Static { p_ship: 0.3 },
        RouterSpec::MeasuredResponse,
        RouterSpec::QueueLength,
        RouterSpec::UtilizationThreshold { threshold: -0.2 },
        RouterSpec::MinIncoming {
            estimator: UtilizationEstimator::QueueLength,
        },
        RouterSpec::MinIncoming {
            estimator: UtilizationEstimator::NumInSystem,
        },
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::QueueLength,
        },
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
        RouterSpec::SmoothedMinAverage {
            estimator: UtilizationEstimator::NumInSystem,
            scale: 0.2,
        },
    ]
}

fn light_config() -> SystemConfig {
    SystemConfig::paper_default()
        .with_total_rate(18.0)
        .with_horizon(30.0, 6.0)
        .with_seed(42)
}

fn faulted_config() -> SystemConfig {
    let mut cfg = light_config();
    cfg.fault_schedule = FaultSchedule::empty()
        .site_outage(0, 8.0, 12.0)
        .central_outage(14.0, 16.0)
        .link_outage(3, 18.0, 20.0);
    cfg.failure_aware = true;
    cfg
}

/// Tallies of the traced run used by the conservation checks.
#[derive(Default)]
struct Ledger {
    arrivals: u64,
    completions: u64,
    rejected: u64,
    crashed: u64,
    arrivals_measured: u64,
    completions_measured: u64,
}

/// Replays a trace into a ledger, asserting id-level conservation along
/// the way: completions and crash aborts consume admitted ids exactly
/// once, and nothing completes after it was crash-killed.
fn audit(cfg: &SystemConfig, spec: RouterSpec) -> (RunMetrics, Ledger) {
    let mut sys = HybridSystem::new(cfg.clone(), spec).expect("valid config");
    sys.enable_trace();
    let (metrics, trace) = sys.run_traced();
    let warmup = cfg.warmup;
    let mut led = Ledger::default();
    // txn id -> still alive (admitted, neither completed nor crashed).
    let mut alive: HashMap<u64, ()> = HashMap::new();
    for (at, ev) in trace.events() {
        match ev {
            TraceEvent::Arrival { txn, .. } => {
                assert!(alive.insert(*txn, ()).is_none(), "txn {txn} admitted twice");
                led.arrivals += 1;
                if at.as_secs() > warmup {
                    led.arrivals_measured += 1;
                }
            }
            TraceEvent::Completion { txn, .. } => {
                assert!(
                    alive.remove(txn).is_some(),
                    "txn {txn} completed without being admitted (or completed twice)"
                );
                led.completions += 1;
                if at.as_secs() > warmup {
                    led.completions_measured += 1;
                }
            }
            TraceEvent::CrashAbort { txn, .. } => {
                assert!(
                    alive.remove(txn).is_some(),
                    "txn {txn} crash-killed without being admitted (or already gone)"
                );
                led.crashed += 1;
            }
            TraceEvent::Rejected { .. } => led.rejected += 1,
            _ => {}
        }
    }
    // Whatever was admitted and never left is the in-flight population
    // at the horizon — the trace-level conservation law.
    assert_eq!(
        led.arrivals,
        led.completions + led.crashed + alive.len() as u64,
        "arrivals must split into completions + crash aborts + in-flight"
    );
    (metrics, led)
}

/// Conservation at drain under every routing policy, fault-free: the
/// trace's ledger closes, and the reported metrics window counters
/// equal the trace's post-warmup tallies.
#[test]
fn conservation_under_every_policy() {
    let cfg = light_config();
    for spec in all_specs() {
        let (m, led) = audit(&cfg, spec);
        assert_eq!(
            led.rejected,
            0,
            "{}: rejections without faults",
            spec.label()
        );
        assert_eq!(
            led.crashed,
            0,
            "{}: crash aborts without faults",
            spec.label()
        );
        assert_eq!(
            m.arrivals,
            led.arrivals_measured,
            "{}: metrics arrivals disagree with trace",
            spec.label()
        );
        assert_eq!(
            m.completions,
            led.completions_measured,
            "{}: metrics completions disagree with trace",
            spec.label()
        );
        assert!(m.completions > 0, "{}: nothing completed", spec.label());
    }
}

/// The same ledger closes under a fault schedule that kills and rejects
/// transactions: crash aborts and rejections are part of the balance,
/// and the availability counters agree with the trace totals. (Counters
/// accumulate over the whole run, warmup included, like the trace.)
#[test]
fn conservation_under_faults() {
    let cfg = faulted_config();
    for spec in [
        RouterSpec::QueueLength,
        RouterSpec::Static { p_ship: 0.3 },
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
    ] {
        let (m, led) = audit(&cfg, spec);
        assert!(led.crashed > 0, "{}: schedule killed nothing", spec.label());
        let a = &m.availability;
        assert_eq!(
            a.crash_aborts_site + a.crash_aborts_central,
            led.crashed,
            "{}: crash-abort counters disagree with trace",
            spec.label()
        );
        assert_eq!(
            a.rejected_class_a + a.rejected_class_b,
            led.rejected,
            "{}: rejection counters disagree with trace",
            spec.label()
        );
    }
}

/// Per-site metric invariants through the speculative path: for every
/// thread count, the per-`(class, route, site)` response histograms
/// partition the completion count exactly — no completion is dropped or
/// double-counted at window barriers — site indices stay in range, and
/// the message-kind breakdown sums to the message total. Heterogeneous
/// per-site rates make the per-site counts distinct, so a mis-merge
/// that swaps or duplicates a site's journal cannot cancel out.
#[test]
fn per_site_histograms_partition_completions() {
    let mut cfg = light_config();
    cfg.obs.histograms = true;
    cfg.site_profiles = Some(
        (0..cfg.params.n_sites)
            .map(|i| RateProfile::Constant(0.9 + 0.2 * i as f64))
            .collect(),
    );
    let spec = RouterSpec::QueueLength;
    let serial = HybridSystem::new(cfg.clone(), spec).expect("valid").run();
    for threads in [1, 2, 4, 8] {
        let m = HybridSystem::new(cfg.clone(), spec)
            .expect("valid")
            .run_threads(threads);
        assert_eq!(serial, m, "sim-threads={threads} diverged");
        let obs = m.obs.as_ref().expect("histograms enabled");
        let total: u64 = obs.response.iter().map(|(_, h)| h.count()).sum();
        assert_eq!(
            total, m.completions,
            "sim-threads={threads}: histogram counts must partition completions"
        );
        for (key, h) in &obs.response {
            assert!(key.site < cfg.params.n_sites, "site index out of range");
            assert!(h.count() > 0, "empty histograms must be omitted");
        }
        let by_kind: u64 = m.messages_by_kind.iter().map(|(_, c)| c).sum();
        assert_eq!(
            by_kind, m.messages,
            "sim-threads={threads}: message-kind breakdown must sum to the total"
        );
        assert!((0.0..=1.0).contains(&m.rho_central));
        assert!((0.0..=1.0).contains(&m.rho_local));
    }
}

/// The speculative path conserves transactions end to end: serial and
/// parallel runs agree on the arrival/completion window counters for
/// every policy (a dropped or duplicated arrival feed would show here
/// even when mean metrics happen to collide).
#[test]
fn window_counters_survive_speculation() {
    let cfg = light_config();
    for spec in all_specs() {
        let serial = HybridSystem::new(cfg.clone(), spec).expect("valid").run();
        let parallel = HybridSystem::new(cfg.clone(), spec)
            .expect("valid")
            .run_threads(4);
        assert_eq!(serial.arrivals, parallel.arrivals, "{}", spec.label());
        assert_eq!(serial.completions, parallel.completions, "{}", spec.label());
        assert_eq!(serial, parallel, "{}", spec.label());
    }
}
