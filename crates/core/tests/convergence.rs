//! End-to-end replica-convergence tests: after the system drains, the
//! central replica must hold exactly the same last write for every item as
//! the item's master site. This is the correctness property the Section 2
//! protocol (coherence counts, invalidation, authentication) exists to
//! provide — and a drained run checks it for tens of thousands of
//! committed writes.

use hls_core::{DeadlockVictim, HybridSystem, RouterSpec, SystemConfig, UtilizationEstimator};

fn drained(cfg: SystemConfig, spec: RouterSpec) {
    let (metrics, report) = HybridSystem::new(cfg, spec)
        .expect("valid config")
        .run_drained();
    assert!(metrics.completions > 0, "nothing ran");
    assert_eq!(report.in_flight_txns, 0, "drain left transactions behind");
    assert!(
        report.divergent.is_empty(),
        "replica diverged on {} of {} items: {:?}",
        report.divergent.len(),
        report.items_checked,
        &report.divergent[..report.divergent.len().min(10)]
    );
    assert!(report.items_checked > 0, "no writes happened");
}

fn base(rate: f64) -> SystemConfig {
    SystemConfig::paper_default()
        .with_total_rate(rate)
        .with_horizon(80.0, 10.0)
        .with_seed(31)
}

#[test]
fn converges_with_no_sharing() {
    drained(base(12.0), RouterSpec::NoSharing);
}

#[test]
fn converges_with_heavy_shipping() {
    drained(base(12.0), RouterSpec::Static { p_ship: 0.8 });
}

#[test]
fn converges_with_best_dynamic() {
    drained(
        base(16.0),
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
    );
}

#[test]
fn converges_under_heavy_contention() {
    // Small lock space: constant invalidations, seizures, negative acks
    // and deadlocks — the hardest case for coherence.
    let mut cfg = base(12.0);
    cfg.params.lockspace = 800.0;
    drained(cfg, RouterSpec::Static { p_ship: 0.5 });
}

#[test]
fn converges_with_batched_async_updates() {
    let mut cfg = base(12.0);
    cfg.async_batch_window = Some(0.5);
    drained(cfg, RouterSpec::Static { p_ship: 0.4 });
}

#[test]
fn converges_with_large_delay() {
    drained(
        base(12.0).with_comm_delay(0.8),
        RouterSpec::Static { p_ship: 0.5 },
    );
}

#[test]
fn converges_with_zero_delay() {
    drained(
        base(12.0).with_comm_delay(0.0),
        RouterSpec::Static { p_ship: 0.5 },
    );
}

#[test]
fn converges_with_alternate_deadlock_victims() {
    for victim in [DeadlockVictim::Youngest, DeadlockVictim::FewestLocks] {
        let mut cfg = base(10.0);
        cfg.params.lockspace = 1000.0;
        cfg.deadlock_victim = victim;
        drained(cfg, RouterSpec::Static { p_ship: 0.5 });
    }
}

#[test]
fn converges_with_mixed_read_write() {
    let mut cfg = base(14.0);
    cfg.write_fraction = 0.4;
    drained(cfg, RouterSpec::QueueLength);
}

#[test]
fn converges_on_small_hot_system() {
    // 2 sites, tiny lock space, long horizon: maximal protocol churn.
    let mut cfg = SystemConfig::paper_default()
        .with_total_rate(6.0)
        .with_horizon(200.0, 10.0)
        .with_seed(77);
    cfg.params.n_sites = 2;
    cfg.params.lockspace = 300.0;
    drained(cfg, RouterSpec::Static { p_ship: 0.5 });
}
