//! End-to-end integration tests of the hybrid system simulator: protocol
//! behaviour, conservation, determinism, and configuration effects.

use hls_core::{
    run_simulation, HybridSystem, RateProfile, RouterSpec, SystemConfig, UtilizationEstimator,
};

fn quick(rate: f64) -> SystemConfig {
    SystemConfig::paper_default()
        .with_total_rate(rate)
        .with_horizon(120.0, 20.0)
}

#[test]
fn same_seed_is_bit_identical() {
    let a = run_simulation(quick(12.0), RouterSpec::QueueLength).unwrap();
    let b = run_simulation(quick(12.0), RouterSpec::QueueLength).unwrap();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = run_simulation(quick(12.0), RouterSpec::QueueLength).unwrap();
    let b = run_simulation(quick(12.0).with_seed(99), RouterSpec::QueueLength).unwrap();
    assert_ne!(a.mean_response, b.mean_response);
    // But they agree statistically.
    assert!((a.mean_response - b.mean_response).abs() / a.mean_response < 0.3);
}

#[test]
fn throughput_matches_offered_load_below_saturation() {
    let m = run_simulation(quick(10.0), RouterSpec::NoSharing).unwrap();
    assert!(
        (m.throughput - 10.0).abs() < 1.0,
        "throughput = {}",
        m.throughput
    );
    // Completions track arrivals (a few in flight at the boundary).
    assert!(m.completions as i64 - m.arrivals as i64 <= 50);
    assert!(m.arrivals as i64 - m.completions as i64 <= 50);
}

#[test]
fn no_sharing_never_ships_and_static_one_always_ships() {
    let none = run_simulation(quick(8.0), RouterSpec::NoSharing).unwrap();
    assert_eq!(none.shipped_fraction, 0.0);
    assert_eq!(none.mean_response_shipped_a, None);

    let all = run_simulation(quick(8.0), RouterSpec::Static { p_ship: 1.0 }).unwrap();
    assert_eq!(all.shipped_fraction, 1.0);
    assert_eq!(all.mean_response_local_a, None);
    assert!(all.mean_response_shipped_a.is_some());
}

#[test]
fn class_b_always_runs_centrally() {
    // p_local = 0: every transaction is class B.
    let mut cfg = quick(8.0);
    cfg.params.p_local = 0.0;
    let m = run_simulation(cfg, RouterSpec::NoSharing).unwrap();
    assert!(m.mean_response_class_b.is_some());
    assert_eq!(m.mean_response_local_a, None);
    assert_eq!(m.mean_response_shipped_a, None);
    assert!(m.rho_central > 0.05);
}

#[test]
fn purely_local_workload_has_no_cross_site_aborts() {
    // p_local = 1 and no shipping: the only aborts possible are local
    // deadlocks; no transaction ever runs centrally.
    let mut cfg = quick(10.0);
    cfg.params.p_local = 1.0;
    let m = run_simulation(cfg, RouterSpec::NoSharing).unwrap();
    assert_eq!(m.aborts.local_invalidated, 0);
    assert_eq!(m.aborts.central_invalidated, 0);
    assert_eq!(m.aborts.central_neg_ack, 0);
    assert_eq!(m.aborts.deadlock_central, 0);
    assert!(m.mean_response_class_b.is_none());
}

#[test]
fn read_only_workload_never_aborts() {
    // All-shared locks: no conflicts, no invalidations, no deadlocks, and
    // no asynchronous updates to propagate.
    let mut cfg = quick(12.0);
    cfg.write_fraction = 0.0;
    let m = run_simulation(cfg, RouterSpec::Static { p_ship: 0.5 }).unwrap();
    assert_eq!(m.aborts.total(), 0, "aborts = {:?}", m.aborts);
    assert_eq!(m.mean_reruns, 0.0);
}

#[test]
fn contention_produces_cross_site_aborts() {
    // Shrink the lock space so local-central collisions are common; the
    // invalidation/authentication machinery must fire.
    let mut cfg = quick(12.0);
    cfg.params.lockspace = 400.0;
    let m = run_simulation(cfg, RouterSpec::Static { p_ship: 0.5 }).unwrap();
    assert!(
        m.aborts.local_invalidated > 0,
        "no local invalidations: {:?}",
        m.aborts
    );
    assert!(
        m.aborts.central_invalidated + m.aborts.central_neg_ack > 0,
        "no central aborts: {:?}",
        m.aborts
    );
    assert!(m.mean_reruns > 0.0);
}

#[test]
fn larger_delay_slows_shipped_transactions() {
    let near = run_simulation(quick(8.0), RouterSpec::Static { p_ship: 1.0 }).unwrap();
    let far = run_simulation(
        quick(8.0).with_comm_delay(0.5),
        RouterSpec::Static { p_ship: 1.0 },
    )
    .unwrap();
    let near_rt = near.mean_response_shipped_a.unwrap();
    let far_rt = far.mean_response_shipped_a.unwrap();
    // Four one-way legs: expect roughly 4 * 0.3 s more.
    assert!(far_rt - near_rt > 0.8, "near {near_rt}, far {far_rt}");
}

#[test]
fn local_sites_saturate_without_sharing() {
    let m = run_simulation(quick(24.0), RouterSpec::NoSharing).unwrap();
    assert!(m.rho_local > 0.95, "rho_local = {}", m.rho_local);
    assert!(m.throughput < 22.0);
    let shared = run_simulation(
        quick(24.0),
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
    )
    .unwrap();
    assert!(
        (shared.throughput - 24.0).abs() < 1.5,
        "throughput = {}",
        shared.throughput
    );
    assert!(shared.mean_response < m.mean_response / 2.0);
}

#[test]
fn async_batching_reduces_message_count() {
    let mut batched_cfg = quick(12.0);
    batched_cfg.async_batch_window = Some(0.5);
    let plain = run_simulation(quick(12.0), RouterSpec::NoSharing).unwrap();
    let batched = run_simulation(batched_cfg, RouterSpec::NoSharing).unwrap();
    assert!(
        batched.messages < plain.messages,
        "batched {} vs plain {}",
        batched.messages,
        plain.messages
    );
    // Same work still completes.
    assert!((batched.throughput - plain.throughput).abs() < 1.0);
}

#[test]
fn instantaneous_state_is_at_least_as_good_for_queue_router() {
    let mut ideal_cfg = quick(20.0);
    ideal_cfg.instantaneous_state = true;
    let delayed = run_simulation(quick(20.0), RouterSpec::QueueLength).unwrap();
    let ideal = run_simulation(ideal_cfg, RouterSpec::QueueLength).unwrap();
    // Fresh state should not make routing meaningfully worse.
    assert!(
        ideal.mean_response < delayed.mean_response * 1.25,
        "ideal {} vs delayed {}",
        ideal.mean_response,
        delayed.mean_response
    );
}

#[test]
fn threshold_router_ships_more_with_lower_threshold() {
    let strict = run_simulation(
        quick(14.0),
        RouterSpec::UtilizationThreshold { threshold: 0.3 },
    )
    .unwrap();
    let eager = run_simulation(
        quick(14.0),
        RouterSpec::UtilizationThreshold { threshold: -0.3 },
    )
    .unwrap();
    assert!(
        eager.shipped_fraction > strict.shipped_fraction,
        "eager {} vs strict {}",
        eager.shipped_fraction,
        strict.shipped_fraction
    );
}

#[test]
fn measured_response_router_adapts() {
    let m = run_simulation(quick(14.0), RouterSpec::MeasuredResponse).unwrap();
    // It must sample both options.
    assert!(m.shipped_fraction > 0.0 && m.shipped_fraction < 1.0);
    assert!(m.completions > 1000);
}

#[test]
fn all_dynamic_routers_beat_no_sharing_past_the_knee() {
    let base = run_simulation(quick(21.0), RouterSpec::NoSharing).unwrap();
    for spec in [
        RouterSpec::QueueLength,
        RouterSpec::MinIncoming {
            estimator: UtilizationEstimator::QueueLength,
        },
        RouterSpec::MinIncoming {
            estimator: UtilizationEstimator::NumInSystem,
        },
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::QueueLength,
        },
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
    ] {
        let m = run_simulation(quick(21.0), spec).unwrap();
        assert!(
            m.mean_response < base.mean_response,
            "{} not better than no-sharing ({} vs {})",
            spec.label(),
            m.mean_response,
            base.mean_response
        );
    }
}

#[test]
fn time_varying_load_runs() {
    let mut cfg = quick(10.0);
    cfg.site_profiles = Some(
        (0..10)
            .map(|i| {
                if i < 5 {
                    RateProfile::Piecewise(vec![(30.0, 2.0), (30.0, 0.5)])
                } else {
                    RateProfile::Constant(1.0)
                }
            })
            .collect(),
    );
    let m = run_simulation(
        cfg,
        RouterSpec::MinAverage {
            estimator: UtilizationEstimator::NumInSystem,
        },
    )
    .unwrap();
    assert!(m.completions > 500);
    assert!(m.shipped_fraction > 0.0);
}

#[test]
fn single_site_system_works() {
    let mut cfg = SystemConfig::paper_default()
        .with_horizon(120.0, 20.0)
        .with_site_rate(1.0);
    cfg.params.n_sites = 1;
    let m = run_simulation(cfg, RouterSpec::QueueLength).unwrap();
    assert!(m.completions > 50);
}

#[test]
fn invalid_config_is_rejected() {
    let mut cfg = quick(10.0);
    cfg.params.p_local = 2.0;
    assert!(HybridSystem::new(cfg, RouterSpec::NoSharing).is_err());
}

#[test]
fn zero_delay_network_runs() {
    let m = run_simulation(
        quick(10.0).with_comm_delay(0.0),
        RouterSpec::Static { p_ship: 0.5 },
    )
    .unwrap();
    assert!(m.completions > 900);
    // Without communication penalty shipped response should be close to
    // (or better than) local.
    let shipped = m.mean_response_shipped_a.unwrap();
    let local = m.mean_response_local_a.unwrap();
    assert!(shipped < local * 1.2, "shipped {shipped} vs local {local}");
}

#[test]
fn p95_and_ci_are_reported() {
    let m = run_simulation(quick(12.0), RouterSpec::QueueLength).unwrap();
    let p95 = m.p95_response.unwrap();
    assert!(p95 >= m.mean_response);
    let (lo, hi) = m.response_ci95.unwrap();
    assert!(lo <= m.mean_response && m.mean_response <= hi);
}

#[test]
fn sampled_run_produces_time_series() {
    let cfg = quick(10.0);
    let (metrics, samples) = HybridSystem::new(cfg, RouterSpec::QueueLength)
        .unwrap()
        .run_sampled(5.0);
    assert!(metrics.completions > 0);
    // 120 s horizon, 5 s interval, first sample at t=5.
    assert!(samples.len() >= 22, "samples = {}", samples.len());
    let mut last = 0.0;
    for p in &samples {
        assert!(p.at > last);
        last = p.at;
        assert!(p.q_local_mean >= 0.0);
    }
    // The system is busy: some sample sees work somewhere.
    assert!(samples.iter().any(|p| p.q_central + p.n_local_total > 0));
}

#[test]
fn lock_wait_metric_tracks_contention() {
    let calm = run_simulation(quick(8.0), RouterSpec::NoSharing).unwrap();
    let mut hot_cfg = quick(8.0);
    hot_cfg.params.lockspace = 1000.0;
    let hot = run_simulation(hot_cfg, RouterSpec::NoSharing).unwrap();
    assert!(
        hot.mean_lock_wait > calm.mean_lock_wait,
        "hot {} vs calm {}",
        hot.mean_lock_wait,
        calm.mean_lock_wait
    );
    assert!(calm.mean_lock_wait >= 0.0);
}

#[test]
fn message_kind_counts_sum_to_total() {
    let m = run_simulation(quick(10.0), RouterSpec::Static { p_ship: 0.5 }).unwrap();
    let sum: u64 = m.messages_by_kind.iter().map(|&(_, c)| c).sum();
    assert_eq!(sum, m.messages);
    let kinds: Vec<&str> = m.messages_by_kind.iter().map(|(k, _)| k.as_str()).collect();
    for expected in [
        "ship",
        "async_update",
        "async_ack",
        "auth_request",
        "auth_reply",
        "commit",
        "reply",
    ] {
        assert!(kinds.contains(&expected), "missing message kind {expected}");
    }
}
