//! # hls-placement — adaptive data placement
//!
//! In the 1988 paper a transaction's class (A = purely local data,
//! B = non-local) is frozen by a static partition-to-site assignment:
//! site `i` masters the `i`-th contiguous slice of the lock space,
//! forever. Every load-sharing policy therefore fights a workload it
//! cannot reshape. This crate provides the pieces of an *online*
//! placement controller that re-homes partitions as access patterns
//! drift, reclassifying transactions A↔B at admission:
//!
//! * [`PartitionGeometry`] — a fixed subdivision of the lock space into
//!   placement partitions, aligned with the paper's site slices so that
//!   the epoch-0 map reproduces the static assignment exactly;
//! * [`PlacementMap`] — the partition → home-site assignment, versioned
//!   by a monotonically increasing epoch;
//! * [`PlacementStats`] — per-partition × per-site access counters with
//!   exponential decay, fed by the simulator's admission path;
//! * [`plan`] — the migration planner: a pure, deterministic function
//!   from (map, stats, store sizes) to a set of non-overlapping
//!   [`Migration`]s under a bytes-moved vs. projected-savings cost
//!   model.
//!
//! The crate is simulator-agnostic: `hls-core` owns migration
//! *execution* (copy, catch-up, atomic switchover with in-flight
//! draining); this crate owns the *decisions*.
//!
//! # Examples
//!
//! ```
//! use hls_placement::{PartitionGeometry, PlacementConfig, PlacementMap, PlacementStats, plan};
//!
//! let geo = PartitionGeometry::new(10, 32 * 1024, 2)?;
//! let map = PlacementMap::new_static(geo);
//! let mut stats = PlacementStats::new(&geo);
//! // Site 3 hammers partition 0 (statically homed at site 0).
//! for _ in 0..1000 {
//!     stats.record(0, 3);
//! }
//! let items = vec![10; geo.n_partitions()];
//! let migrating = vec![false; geo.n_partitions()];
//! let cfg = PlacementConfig::threshold_default();
//! let plan = plan(&cfg, &map, &stats, &items, &migrating);
//! assert_eq!(plan.len(), 1);
//! assert_eq!((plan[0].partition, plan[0].from, plan[0].to), (0, 0, 3));
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hls_lockmgr::LockId;

/// A fixed subdivision of the lock space into placement partitions.
///
/// Each site's slice of the lock space (width `lockspace / n_sites`,
/// with the division remainder attached to the last site, exactly as in
/// `WorkloadSpec::master_of`) is cut into `parts_per_site` contiguous
/// sub-ranges. Partition `site * parts_per_site + j` is the `j`-th
/// sub-range of `site`'s slice, so the epoch-0 "every partition at its
/// slice's site" map reproduces the paper's static assignment bit for
/// bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionGeometry {
    n_sites: usize,
    lockspace: u32,
    parts_per_site: usize,
}

impl PartitionGeometry {
    /// Creates a geometry after validating that every partition is a
    /// non-empty lock range.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn new(n_sites: usize, lockspace: u32, parts_per_site: usize) -> Result<Self, String> {
        if n_sites == 0 {
            return Err("placement geometry: n_sites must be positive".into());
        }
        if parts_per_site == 0 {
            return Err("placement geometry: parts_per_site must be positive".into());
        }
        let slice = lockspace as usize / n_sites;
        if slice == 0 {
            return Err("placement geometry: lockspace slice per site is empty".into());
        }
        if slice / parts_per_site == 0 {
            return Err(format!(
                "placement geometry: {parts_per_site} partitions do not fit in a \
                 {slice}-element site slice"
            ));
        }
        Ok(PartitionGeometry {
            n_sites,
            lockspace,
            parts_per_site,
        })
    }

    /// Number of sites the geometry partitions across.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Partitions per site slice.
    #[must_use]
    pub fn parts_per_site(&self) -> usize {
        self.parts_per_site
    }

    /// Total number of placement partitions.
    #[must_use]
    pub fn n_partitions(&self) -> usize {
        self.n_sites * self.parts_per_site
    }

    fn slice_width(&self) -> u32 {
        self.lockspace / self.n_sites as u32
    }

    fn sub_width(&self) -> u32 {
        self.slice_width() / self.parts_per_site as u32
    }

    /// The partition containing `lock`. Trailing remainders (of both the
    /// site slice and the sub-slice division) belong to the last
    /// partition of their range, mirroring `WorkloadSpec::master_of`.
    #[must_use]
    pub fn partition_of(&self, lock: LockId) -> u32 {
        let w = self.slice_width();
        let site = ((lock.0 / w) as usize).min(self.n_sites - 1);
        let offset = lock.0 - site as u32 * w;
        let j = ((offset / self.sub_width()) as usize).min(self.parts_per_site - 1);
        (site * self.parts_per_site + j) as u32
    }

    /// The site whose slice partition `p` was cut from — its epoch-0
    /// home under the paper's static assignment.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn static_home(&self, p: u32) -> usize {
        assert!(
            (p as usize) < self.n_partitions(),
            "partition {p} out of range"
        );
        p as usize / self.parts_per_site
    }
}

/// The partition → home-site assignment, versioned by epoch.
///
/// Epoch 0 is the paper's static assignment; every applied
/// [`Migration`] re-homes one partition and bumps the epoch by one, so
/// the epoch totally orders placement changes and lets in-flight state
/// be checked against the map version it was created under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    geo: PartitionGeometry,
    home: Vec<u32>,
    epoch: u64,
}

impl PlacementMap {
    /// The epoch-0 map: every partition at its slice's site.
    #[must_use]
    pub fn new_static(geo: PartitionGeometry) -> Self {
        let home = (0..geo.n_partitions())
            .map(|p| geo.static_home(p as u32) as u32)
            .collect();
        PlacementMap {
            geo,
            home,
            epoch: 0,
        }
    }

    /// The geometry this map assigns over.
    #[must_use]
    pub fn geometry(&self) -> &PartitionGeometry {
        &self.geo
    }

    /// Current epoch (number of migrations applied).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current home site of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn home_of(&self, p: u32) -> usize {
        self.home[p as usize] as usize
    }

    /// The current master site of `lock` — the placement-aware
    /// replacement for `WorkloadSpec::master_of`.
    #[must_use]
    pub fn master_of(&self, lock: LockId) -> usize {
        self.home_of(self.geo.partition_of(lock))
    }

    /// Whether the map still equals the epoch-0 static assignment.
    #[must_use]
    pub fn is_static(&self) -> bool {
        self.home
            .iter()
            .enumerate()
            .all(|(p, &h)| h as usize == self.geo.static_home(p as u32))
    }

    /// Applies a migration: re-homes the partition and bumps the epoch.
    ///
    /// # Panics
    ///
    /// Panics if the migration's `from` does not match the partition's
    /// current home — the caller raced two migrations of one partition,
    /// which the planner never emits.
    pub fn apply(&mut self, m: &Migration) {
        assert_eq!(
            self.home[m.partition as usize], m.from,
            "migration of partition {} expected home {}, map says {}",
            m.partition, m.from, self.home[m.partition as usize]
        );
        self.home[m.partition as usize] = m.to;
        self.epoch += 1;
    }
}

/// Per-partition × per-site access counters with exponential decay.
///
/// `record(p, s)` counts one lock reference to partition `p` by a
/// transaction originating at site `s`; [`PlacementStats::decay`]
/// halves every counter (integer division — deterministic), so the
/// planner sees a geometrically weighted window of recent intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementStats {
    n_sites: usize,
    access: Vec<u64>,
}

impl PlacementStats {
    /// Zeroed counters for every (partition, site) pair of `geo`.
    #[must_use]
    pub fn new(geo: &PartitionGeometry) -> Self {
        PlacementStats {
            n_sites: geo.n_sites(),
            access: vec![0; geo.n_partitions() * geo.n_sites()],
        }
    }

    /// Counts one access to partition `p` from origin site `site`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is out of range.
    pub fn record(&mut self, p: u32, site: usize) {
        self.access[p as usize * self.n_sites + site] += 1;
    }

    /// Halves every counter (deterministic integer decay).
    pub fn decay(&mut self) {
        for a in &mut self.access {
            *a /= 2;
        }
    }

    /// Clears partition `p`'s counters (post-migration hysteresis).
    pub fn clear_partition(&mut self, p: u32) {
        let base = p as usize * self.n_sites;
        self.access[base..base + self.n_sites].fill(0);
    }

    /// Total recorded accesses to partition `p`.
    #[must_use]
    pub fn total(&self, p: u32) -> u64 {
        let base = p as usize * self.n_sites;
        self.access[base..base + self.n_sites].iter().sum()
    }

    /// The site with the most recorded accesses to `p` (ties broken
    /// toward the lowest site index) and its count.
    #[must_use]
    pub fn top_site(&self, p: u32) -> (usize, u64) {
        let base = p as usize * self.n_sites;
        let mut best = (0, self.access[base]);
        for s in 1..self.n_sites {
            let a = self.access[base + s];
            if a > best.1 {
                best = (s, a);
            }
        }
        best
    }
}

/// One planned partition move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Partition being re-homed.
    pub partition: u32,
    /// Its home when the plan was made (checked at apply time).
    pub from: u32,
    /// The new home.
    pub to: u32,
}

/// When the controller moves a partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementPolicy {
    /// Never: the epoch-0 static assignment, the paper's system. With no
    /// workload drift this is bit-identical to a build without the
    /// placement subsystem.
    Static,
    /// Threshold-triggered: at every control tick, move a partition to
    /// its top accessor when that site contributes at least
    /// `remote_frac` of the partition's accesses (and the cost model
    /// approves).
    Threshold {
        /// Minimum fraction of a partition's accesses the remote top
        /// site must contribute before a move is considered.
        remote_frac: f64,
    },
    /// Periodic full re-optimization (Lion-style): every control tick
    /// re-homes any partition whose top accessor holds a strict
    /// majority of its accesses, subject to the same cost model.
    Epoch,
}

/// Placement controller configuration: the policy plus its knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Migration-triggering policy.
    pub policy: PlacementPolicy,
    /// Control-tick interval in simulated seconds (stats decay once per
    /// tick, so this is also the observation window).
    pub interval: f64,
    /// Placement partitions per site slice.
    pub parts_per_site: usize,
    /// Bytes per stored item, pricing a partition copy.
    pub item_bytes: u64,
    /// Bulk-copy bandwidth in bytes per simulated second.
    pub bandwidth: f64,
    /// Projected bytes of messaging saved per remote access converted
    /// to a local one (the benefit side of the cost model).
    pub remote_cost_bytes: u64,
    /// How many future control intervals a migration may amortize its
    /// copy cost over.
    pub payback_intervals: u64,
    /// Minimum decayed accesses to a partition before it is considered.
    pub min_accesses: u64,
    /// Maximum migrations in flight at once.
    pub max_concurrent: usize,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            policy: PlacementPolicy::Static,
            interval: 5.0,
            parts_per_site: 2,
            item_bytes: 128,
            bandwidth: 25.0e6,
            remote_cost_bytes: 768,
            payback_intervals: 8,
            min_accesses: 24,
            max_concurrent: 4,
        }
    }
}

impl PlacementConfig {
    /// The default knobs under the [`PlacementPolicy::Threshold`]
    /// policy.
    #[must_use]
    pub fn threshold_default() -> Self {
        PlacementConfig {
            policy: PlacementPolicy::Threshold { remote_frac: 0.55 },
            ..PlacementConfig::default()
        }
    }

    /// The default knobs under the [`PlacementPolicy::Epoch`] policy.
    #[must_use]
    pub fn epoch_default() -> Self {
        PlacementConfig {
            policy: PlacementPolicy::Epoch,
            ..PlacementConfig::default()
        }
    }

    /// Whether the policy can ever plan a migration.
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        !matches!(self.policy, PlacementPolicy::Static)
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.interval > 0.0 && self.interval.is_finite()) {
            return Err(format!(
                "placement interval must be a positive number of seconds (got {})",
                self.interval
            ));
        }
        if self.parts_per_site == 0 {
            return Err("placement parts_per_site must be positive".into());
        }
        if !(self.bandwidth > 0.0 && self.bandwidth.is_finite()) {
            return Err(format!(
                "placement bandwidth must be positive bytes/second (got {})",
                self.bandwidth
            ));
        }
        if self.max_concurrent == 0 {
            return Err("placement max_concurrent must be positive".into());
        }
        if let PlacementPolicy::Threshold { remote_frac } = self.policy {
            if !(0.0..=1.0).contains(&remote_frac) {
                return Err(format!(
                    "placement remote_frac is a fraction and must lie in [0, 1] \
                     (got {remote_frac})"
                ));
            }
        }
        Ok(())
    }
}

/// Plans the migrations one control tick starts.
///
/// A pure function of its inputs: partitions are scanned in index
/// order, ties in [`PlacementStats::top_site`] break toward the lowest
/// site, and the remaining concurrency budget
/// (`max_concurrent - migrating`) caps the plan — so the plan is
/// deterministic, never contains two migrations of one partition, and
/// never targets a partition already in flight.
///
/// The cost model: moving partition `p` to its top accessor converts
/// that site's `top_acc` remote accesses per observation interval into
/// local ones, worth `top_acc * remote_cost_bytes` per interval and
/// amortizable over `payback_intervals`; the move itself costs
/// `items[p] * item_bytes` of bulk copy. A move must project a strict
/// net saving.
#[must_use]
pub fn plan(
    cfg: &PlacementConfig,
    map: &PlacementMap,
    stats: &PlacementStats,
    items: &[u64],
    migrating: &[bool],
) -> Vec<Migration> {
    let n = map.geometry().n_partitions();
    assert_eq!(items.len(), n, "items length mismatch");
    assert_eq!(migrating.len(), n, "migrating length mismatch");
    let active = migrating.iter().filter(|&&m| m).count();
    let mut budget = cfg.max_concurrent.saturating_sub(active);
    let mut out = Vec::new();
    for p in 0..n as u32 {
        if budget == 0 {
            break;
        }
        if migrating[p as usize] {
            continue;
        }
        let total = stats.total(p);
        if total < cfg.min_accesses {
            continue;
        }
        let home = map.home_of(p);
        let (top, top_acc) = stats.top_site(p);
        if top == home {
            continue;
        }
        let eligible = match cfg.policy {
            PlacementPolicy::Static => return Vec::new(),
            PlacementPolicy::Threshold { remote_frac } => {
                top_acc as f64 >= remote_frac * total as f64
            }
            PlacementPolicy::Epoch => top_acc * 2 > total,
        };
        if !eligible {
            continue;
        }
        let gain = top_acc * cfg.remote_cost_bytes * cfg.payback_intervals;
        let cost = items[p as usize] * cfg.item_bytes;
        if gain <= cost {
            continue;
        }
        out.push(Migration {
            partition: p,
            from: home as u32,
            to: top as u32,
        });
        budget -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> PartitionGeometry {
        PartitionGeometry::new(10, 32 * 1024, 2).unwrap()
    }

    #[test]
    fn geometry_aligns_with_static_slices() {
        let g = geo();
        assert_eq!(g.n_partitions(), 20);
        // Slice width 3276, sub width 1638.
        assert_eq!(g.partition_of(LockId(0)), 0);
        assert_eq!(g.partition_of(LockId(1637)), 0);
        assert_eq!(g.partition_of(LockId(1638)), 1);
        assert_eq!(g.partition_of(LockId(3275)), 1);
        assert_eq!(g.partition_of(LockId(3276)), 2);
        // The global remainder (32760..32768) stays in the last
        // partition of the last site.
        assert_eq!(g.partition_of(LockId(32_767)), 19);
        for lock in [0u32, 1637, 1638, 3275, 3276, 16_384, 32_759, 32_767] {
            let p = g.partition_of(LockId(lock));
            let static_site = ((lock / 3276) as usize).min(9);
            assert_eq!(g.static_home(p), static_site, "lock {lock}");
        }
    }

    #[test]
    fn geometry_rejects_bad_shapes() {
        assert!(PartitionGeometry::new(0, 1024, 1).is_err());
        assert!(PartitionGeometry::new(10, 1024, 0).is_err());
        assert!(PartitionGeometry::new(10, 5, 1).is_err());
        assert!(PartitionGeometry::new(10, 1024, 200).is_err());
    }

    #[test]
    fn static_map_matches_master_of() {
        let map = PlacementMap::new_static(geo());
        assert!(map.is_static());
        assert_eq!(map.epoch(), 0);
        for lock in (0..32 * 1024).step_by(7) {
            let expected = ((lock / 3276) as usize).min(9);
            assert_eq!(map.master_of(LockId(lock)), expected, "lock {lock}");
        }
    }

    #[test]
    fn apply_rehomes_and_bumps_epoch() {
        let mut map = PlacementMap::new_static(geo());
        let m = Migration {
            partition: 4,
            from: 2,
            to: 7,
        };
        map.apply(&m);
        assert_eq!(map.epoch(), 1);
        assert_eq!(map.home_of(4), 7);
        assert!(!map.is_static());
        assert_eq!(map.master_of(LockId(2 * 3276 + 10)), 7);
    }

    #[test]
    #[should_panic(expected = "expected home")]
    fn apply_rejects_stale_from() {
        let mut map = PlacementMap::new_static(geo());
        map.apply(&Migration {
            partition: 4,
            from: 9,
            to: 7,
        });
    }

    #[test]
    fn stats_record_decay_and_top() {
        let g = geo();
        let mut stats = PlacementStats::new(&g);
        for _ in 0..10 {
            stats.record(3, 5);
        }
        for _ in 0..4 {
            stats.record(3, 1);
        }
        assert_eq!(stats.total(3), 14);
        assert_eq!(stats.top_site(3), (5, 10));
        stats.decay();
        assert_eq!(stats.total(3), 7);
        stats.clear_partition(3);
        assert_eq!(stats.total(3), 0);
        // Ties break toward the lowest site index.
        stats.record(3, 8);
        stats.record(3, 2);
        assert_eq!(stats.top_site(3), (2, 1));
    }

    #[test]
    fn planner_moves_hot_partition_to_top_accessor() {
        let g = geo();
        let map = PlacementMap::new_static(g);
        let mut stats = PlacementStats::new(&g);
        for _ in 0..100 {
            stats.record(0, 6);
        }
        for _ in 0..20 {
            stats.record(0, 0);
        }
        let items = vec![50u64; g.n_partitions()];
        let migrating = vec![false; g.n_partitions()];
        let cfg = PlacementConfig::threshold_default();
        let plan = plan(&cfg, &map, &stats, &items, &migrating);
        assert_eq!(
            plan,
            vec![Migration {
                partition: 0,
                from: 0,
                to: 6
            }]
        );
    }

    #[test]
    fn planner_respects_cost_model_and_thresholds() {
        let g = geo();
        let map = PlacementMap::new_static(g);
        let mut stats = PlacementStats::new(&g);
        let migrating = vec![false; g.n_partitions()];
        let cfg = PlacementConfig::threshold_default();

        // Too few accesses: below min_accesses.
        for _ in 0..10 {
            stats.record(2, 4);
        }
        let items = vec![0u64; g.n_partitions()];
        assert!(plan(&cfg, &map, &stats, &items, &migrating).is_empty());

        // Enough accesses but the copy never pays for itself.
        for _ in 0..90 {
            stats.record(2, 4);
        }
        let mut heavy = vec![0u64; g.n_partitions()];
        heavy[2] = u64::MAX / cfg.item_bytes / 2;
        assert!(plan(&cfg, &map, &stats, &heavy, &migrating).is_empty());

        // Remote fraction below the threshold: home keeps the majority.
        let mut split = PlacementStats::new(&g);
        for _ in 0..60 {
            split.record(2, 1); // static home of partition 2 is site 1
        }
        for _ in 0..40 {
            split.record(2, 4);
        }
        assert!(plan(&cfg, &map, &split, &items, &migrating).is_empty());

        // Static policy never plans.
        let static_cfg = PlacementConfig::default();
        assert!(plan(&static_cfg, &map, &stats, &items, &migrating).is_empty());
    }

    #[test]
    fn planner_skips_in_flight_and_caps_concurrency() {
        let g = geo();
        let map = PlacementMap::new_static(g);
        let mut stats = PlacementStats::new(&g);
        for p in 0..8 {
            for _ in 0..100 {
                stats.record(p, 9);
            }
        }
        let items = vec![1u64; g.n_partitions()];
        let mut migrating = vec![false; g.n_partitions()];
        migrating[0] = true;
        let cfg = PlacementConfig::threshold_default();
        let out = plan(&cfg, &map, &stats, &items, &migrating);
        // Budget is max_concurrent (4) minus the one in flight; the
        // in-flight partition itself is never re-planned. Partitions
        // 16..17 are homed at site 9 already (wait: p<8 are homed at
        // sites 0..3), so all seven candidates remain and three fit.
        assert_eq!(out.len(), cfg.max_concurrent - 1);
        assert!(out.iter().all(|m| m.partition != 0));
        let mut parts: Vec<u32> = out.iter().map(|m| m.partition).collect();
        parts.dedup();
        assert_eq!(parts.len(), out.len(), "overlapping migrations");
        assert!(out.iter().all(|m| m.to == 9 && m.from != 9));
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let ok = PlacementConfig::threshold_default();
        assert!(ok.validate().is_ok());
        assert!(PlacementConfig {
            interval: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PlacementConfig {
            parts_per_site: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PlacementConfig {
            bandwidth: -1.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PlacementConfig {
            max_concurrent: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PlacementConfig {
            policy: PlacementPolicy::Threshold { remote_frac: 1.5 },
            ..ok
        }
        .validate()
        .is_err());
    }
}
