//! Property tests for the migration planner.
//!
//! The contract under test (ISSUE 8, satellite 3): across random
//! geometries, maps, and access statistics the planner **never plans
//! overlapping migrations for one partition**, never re-plans a
//! partition already in flight, keeps epochs strictly monotonic as its
//! plans are applied, and is **deterministic in the seed** that drew
//! its inputs.
//!
//! Hand-rolled harness in the repo's house style (no crates.io): seeds
//! drive [`hls_sim::SimRng`], `PROPTEST_CASES` (default 200) controls
//! the number of random cases.

use hls_placement::{
    plan, Migration, PartitionGeometry, PlacementConfig, PlacementMap, PlacementPolicy,
    PlacementStats,
};
use hls_sim::SimRng;

fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Draws a random geometry small enough that random stats routinely
/// clear the planner's thresholds.
fn draw_geometry(rng: &mut SimRng) -> PartitionGeometry {
    let n_sites = rng.random_range(2..24) as usize;
    let parts_per_site = 1 + rng.random_range(0..4) as usize;
    let lockspace = (n_sites * parts_per_site) as u32 * (8 + rng.random_range(0..64));
    PartitionGeometry::new(n_sites, lockspace, parts_per_site).expect("drawn geometry is valid")
}

/// A random but reproducible planner input: a map perturbed by a few
/// random (valid) re-homings, skewed access counts, store sizes, and an
/// in-flight set.
#[allow(clippy::type_complexity)]
fn draw_case(
    rng: &mut SimRng,
) -> (
    PlacementConfig,
    PlacementMap,
    PlacementStats,
    Vec<u64>,
    Vec<bool>,
) {
    let geo = draw_geometry(rng);
    let mut map = PlacementMap::new_static(geo);
    let n = geo.n_partitions();
    for _ in 0..rng.random_range(0..4) {
        let p = rng.random_range(0..n as u32);
        let to = rng.random_range(0..geo.n_sites() as u32);
        let from = map.home_of(p) as u32;
        if from != to {
            map.apply(&Migration {
                partition: p,
                from,
                to,
            });
        }
    }
    let mut stats = PlacementStats::new(&geo);
    for _ in 0..rng.random_range(0..512) {
        let p = rng.random_range(0..n as u32);
        let s = rng.random_range(0..geo.n_sites() as u32) as usize;
        let weight = 1 + rng.random_range(0..50);
        for _ in 0..weight {
            stats.record(p, s);
        }
    }
    let items: Vec<u64> = (0..n)
        .map(|_| u64::from(rng.random_range(0..400)))
        .collect();
    let migrating: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.15).collect();
    let policy = match rng.random_range(0..3) {
        0 => PlacementPolicy::Threshold { remote_frac: 0.5 },
        1 => PlacementPolicy::Threshold { remote_frac: 0.8 },
        _ => PlacementPolicy::Epoch,
    };
    let cfg = PlacementConfig {
        policy,
        min_accesses: 1 + u64::from(rng.random_range(0..40)),
        max_concurrent: 1 + rng.random_range(0..6) as usize,
        ..PlacementConfig::default()
    };
    (cfg, map, stats, items, migrating)
}

#[test]
fn plans_never_overlap_and_respect_the_in_flight_set() {
    for case in 0..cases() {
        let mut rng = SimRng::seed_from_u64(0x91AC_0000 + case);
        let (cfg, map, stats, items, migrating) = draw_case(&mut rng);
        let out = plan(&cfg, &map, &stats, &items, &migrating);

        let mut seen: Vec<u32> = out.iter().map(|m| m.partition).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            out.len(),
            "case {case}: plan contains two migrations of one partition: {out:?}"
        );
        let active = migrating.iter().filter(|&&m| m).count();
        assert!(
            out.len() + active <= cfg.max_concurrent.max(active),
            "case {case}: plan of {} exceeds the concurrency budget",
            out.len()
        );
        for m in &out {
            assert!(
                !migrating[m.partition as usize],
                "case {case}: partition {} re-planned while in flight",
                m.partition
            );
            assert_eq!(
                map.home_of(m.partition) as u32,
                m.from,
                "case {case}: stale from-site in {m:?}"
            );
            assert_ne!(m.from, m.to, "case {case}: self-migration in {m:?}");
        }
    }
}

#[test]
fn epochs_are_strictly_monotonic_under_applied_plans() {
    for case in 0..cases().min(100) {
        let mut rng = SimRng::seed_from_u64(0xE90C_0000 + case);
        let (cfg, mut map, mut stats, items, mut migrating) = draw_case(&mut rng);
        // Drive several plan/apply rounds; the epoch must rise by
        // exactly one per applied migration and never regress.
        let mut epoch = map.epoch();
        for _round in 0..6 {
            let out = plan(&cfg, &map, &stats, &items, &migrating);
            for m in &out {
                map.apply(m);
                assert_eq!(
                    map.epoch(),
                    epoch + 1,
                    "case {case}: epoch must rise by one per migration"
                );
                epoch = map.epoch();
                migrating[m.partition as usize] = false;
                stats.clear_partition(m.partition);
            }
            stats.decay();
        }
    }
}

#[test]
fn plan_is_deterministic_in_the_seed() {
    for case in 0..cases() {
        let draw = || {
            let mut rng = SimRng::seed_from_u64(0xD37E_0000 + case);
            let (cfg, map, stats, items, migrating) = draw_case(&mut rng);
            plan(&cfg, &map, &stats, &items, &migrating)
        };
        let a = draw();
        let b = draw();
        assert_eq!(a, b, "case {case}: same seed must reproduce the plan");
        // And across threads: the planner is a pure function, so
        // concurrent planning cannot perturb it.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(draw)).collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), a, "case {case}");
            }
        });
    }
}
